"""Regenerate every artifact into an output directory.

``python -m repro export --out results/`` produces a self-contained
results bundle: one text report per table/figure, the machine-readable
sweep as CSV, and an index.  This is the "make all figures" entry point
a reproduction package is expected to ship.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field

from ..errors import ExperimentError
from .fig1 import fig1a, fig1b, fig1c
from .fig3 import fig3a, fig3b, fig3c
from .fig4 import fig4
from .fig5 import fig5
from .scorecard import run_scorecard
from .sweep import SweepResult, run_sweep
from .table1 import table1

__all__ = ["ExportManifest", "export_all"]


@dataclass
class ExportManifest:
    """What :func:`export_all` wrote."""

    out_dir: str
    files: list[str] = field(default_factory=list)

    def add(self, name: str, content: str) -> str:
        path = os.path.join(self.out_dir, name)
        with open(path, "w") as f:
            f.write(content if content.endswith("\n") else content + "\n")
        self.files.append(name)
        return path


def _sweep_csv(sweep: SweepResult) -> str:
    import io

    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(
        [
            "app",
            "controller",
            "tolerance_pct",
            "slowdown_pct",
            "slowdown_lo",
            "slowdown_hi",
            "package_savings_pct",
            "dram_savings_pct",
            "energy_savings_pct",
        ]
    )
    for (app, ctrl, tol), cmp_ in sorted(sweep.comparisons.items()):
        writer.writerow(
            [
                app,
                ctrl,
                f"{tol:.0f}",
                f"{cmp_.slowdown_pct.mean:.3f}",
                f"{cmp_.slowdown_pct.low:.3f}",
                f"{cmp_.slowdown_pct.high:.3f}",
                f"{cmp_.package_savings_pct.mean:.3f}",
                f"{cmp_.dram_savings_pct.mean:.3f}",
                f"{cmp_.energy_savings_pct.mean:.3f}",
            ]
        )
    return buf.getvalue()


def export_all(
    out_dir: str,
    runs: int = 10,
    sweep: SweepResult | None = None,
    include_scorecard: bool = True,
    workers: int = 1,
    cache=None,
    shard_size: int | None = None,
) -> ExportManifest:
    """Write every table/figure report plus the sweep CSV to ``out_dir``.

    ``workers``/``cache``/``shard_size`` reach the underlying
    evaluation sweep (see :mod:`repro.experiments.executor`), so a
    full export parallelises and warm reruns only re-render.
    """
    if runs < 1:
        raise ExperimentError("need at least one run")
    os.makedirs(out_dir, exist_ok=True)
    manifest = ExportManifest(out_dir=out_dir)

    sweep = sweep or run_sweep(
        runs=runs, workers=workers, cache=cache, shard_size=shard_size
    )

    manifest.add("table1.txt", table1().render())
    manifest.add("fig1a.txt", fig1a(runs=runs).render())
    manifest.add("fig1b.txt", fig1b(runs=runs).render())
    manifest.add("fig1c.txt", fig1c(runs=runs).render())
    for name, panel_fn in (
        ("fig3a", fig3a),
        ("fig3b", fig3b),
        ("fig3c", fig3c),
        ("fig4", fig4),
    ):
        panel = panel_fn(sweep=sweep)
        manifest.add(f"{name}.txt", panel.render())
        manifest.add(f"{name}_bars.txt", panel.render_bars())
    manifest.add("fig5.txt", fig5().render())
    manifest.add("sweep.csv", _sweep_csv(sweep))
    if include_scorecard:
        manifest.add(
            "scorecard.txt", run_scorecard(sweep=sweep, runs=runs).render()
        )

    index = "\n".join(
        ["# repro results bundle", ""]
        + [f"- {name}" for name in manifest.files]
    )
    manifest.add("INDEX.md", index)
    return manifest
