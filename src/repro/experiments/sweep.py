"""The evaluation sweep behind Figures 3 and 4.

One sweep runs every application under the default configuration, DUF
and DUFP at each tolerated slowdown (the paper uses 0, 5, 10 and 20 %),
through the full measurement protocol.  Figures 3a/3b/3c and 4 are
different projections of the same sweep, so the sweep result carries
all four metrics and the figure modules only format them.

Every cell of the grid — each ``(app, controller, tolerance)`` plus
the per-app default baselines — is an independent :class:`~repro.
experiments.executor.RunSpec`, so the grid fans out over ``workers``
processes and deduplicates through an optional content-addressed
``cache``; see :mod:`repro.experiments.executor`.  Cell seeds derive
from cell identity, making serial and parallel sweeps bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..config import (
    ControllerConfig,
    EngineConfig,
    NoiseConfig,
    SocketConfig,
    with_slowdown,
)
from ..analysis.tables import format_table
from ..cluster.spec import ClusterSpec
from ..core.registry import PolicySpec, as_spec, make_spec
from ..errors import ExperimentError
from ..hardware.gpu import GPUNodeConfig
from ..sim.faults import FaultPlan
from ..workloads.catalog import application_names
from .cache import ResultCache
from .executor import ExecutionSummary, RunSpec, cell_seed, run_specs
from .protocol import Comparison, ProtocolResult, compare

__all__ = ["SweepResult", "run_sweep", "sweep_specs", "SWEEP_TOLERANCES_PCT"]

#: The paper's tolerated-slowdown grid, percent.
SWEEP_TOLERANCES_PCT: tuple[float, ...] = (0.0, 5.0, 10.0, 20.0)


@dataclass
class SweepResult:
    """All comparisons of one evaluation sweep."""

    tolerances_pct: tuple[float, ...]
    apps: tuple[str, ...]
    #: (app, controller, tolerance_pct) -> Comparison
    comparisons: dict[tuple[str, str, float], Comparison] = field(
        default_factory=dict
    )
    #: app -> default-config protocol result (the denominators).
    defaults: dict[str, ProtocolResult] = field(default_factory=dict)
    #: Timing/cache accounting of the execution that produced this sweep.
    execution: ExecutionSummary | None = None

    def get(self, app: str, controller: str, tolerance_pct: float) -> Comparison:
        key = (app.upper(), controller, float(tolerance_pct))
        if key not in self.comparisons:
            raise ExperimentError(f"sweep has no entry {key}")
        return self.comparisons[key]

    def configurations(self) -> Iterable[tuple[str, str, float]]:
        return self.comparisons.keys()

    def respected_count(
        self, controller: str = "dufp", slack: float = 0.5
    ) -> tuple[int, int]:
        """(#configurations within tolerance, #configurations).

        ``slack`` (percentage points) absorbs measurement variation:
        the paper's Fig. 3a counts sub-noise slowdowns at 0 % tolerance
        as respected (its stated violations are ≥ ~1 %).
        """
        total = within = 0
        for (app, ctrl, tol), cmp_ in self.comparisons.items():
            if ctrl != controller:
                continue
            total += 1
            if cmp_.within_tolerance(tol, slack):
                within += 1
        return within, total

    def render(self) -> str:
        """Compact all-metric table, one row per grid cell."""
        rows = [
            (
                app,
                ctrl,
                f"{tol:.0f}%",
                cmp_.slowdown_pct.mean,
                cmp_.package_savings_pct.mean,
                cmp_.dram_savings_pct.mean,
                cmp_.energy_savings_pct.mean,
            )
            for (app, ctrl, tol), cmp_ in sorted(self.comparisons.items())
        ]
        return format_table(
            ["app", "ctrl", "tol", "slow %", "pkg save %", "dram save %", "energy save %"],
            rows,
            title="Evaluation sweep (means over kept runs)",
        )


def sweep_specs(
    *,
    apps: Iterable[str] | None = None,
    tolerances_pct: Iterable[float] = SWEEP_TOLERANCES_PCT,
    runs: int = 10,
    controllers: Iterable[PolicySpec | str] = ("duf", "dufp"),
    base_cfg: ControllerConfig | None = None,
    noise: NoiseConfig | None = None,
    engine_cfg: EngineConfig | None = None,
    app_scale: float = 1.0,
    faults: FaultPlan | None = None,
    engine: str = "scalar",
    gpu: GPUNodeConfig | None = None,
    cluster: ClusterSpec | None = None,
    socket: SocketConfig | None = None,
) -> tuple[list[RunSpec], list[tuple[str, str, float] | None]]:
    """The sweep grid as executable specs.

    ``controllers`` accepts any registered policy — a
    :class:`~repro.core.registry.PolicySpec`, a policy id, or the CLI
    syntax ``"name:key=val,..."`` — so baselines like ``dnpc`` or
    ``budget:watts=95`` run through the identical grid/cache
    machinery as DUF and DUFP.  Comparison cells are keyed by the
    policy's parameter-specialised *label* (``static-100W``), keeping
    two parameterisations of one policy distinct within a grid.

    Returns ``(specs, cells)`` of equal length; a ``None`` cell marks
    an app's default-configuration baseline, a tuple the comparison
    cell it belongs to.  Exposed separately from :func:`run_sweep` so
    callers can inspect, shard or pre-warm the grid.

    ``faults`` applies one :class:`~repro.sim.faults.FaultPlan` to
    every cell of the grid (baselines included, so comparisons stay
    apples-to-apples); it folds into each cell's cache digest.

    ``engine`` selects scalar or vectorized-batch execution for every
    cell; results — and cache digests — are identical either way (see
    :class:`~repro.experiments.executor.RunSpec`).

    ``socket`` overrides the platform of every cell (baselines
    included): C-state/EPB models, multi-die uncore, custom frequency
    or power windows.  ``None`` keeps the stock
    :class:`~repro.config.SocketConfig`, whose cache digests are
    byte-identical to grids that never heard of the parameter.

    ``gpu`` turns the grid heterogeneous: every cell carries the
    :class:`~repro.hardware.gpu.GPUNodeConfig` and its ``controllers``
    must be registered hetero budget-split policies (``hetero-coord``,
    ``hetero-fair``, ...).  The per-app baseline is then the naive
    operator configuration — a ``hetero-static`` 50/50 split at the
    first controller's budget — instead of the CPU ``default`` cell,
    so "savings" read as gains over the uncoordinated split.

    ``cluster`` turns the grid multi-node: every cell carries the
    :class:`~repro.cluster.spec.ClusterSpec` and its ``controllers``
    must be registered fleet partitioning policies (``fleet-demand``,
    ``fleet-fair``, ...).  The per-app baseline becomes a
    ``fleet-static`` equal-share partition at the first controller's
    budget, so "savings" read as gains over the never-revisited split.
    """
    app_list = tuple(a.upper() for a in (apps or application_names()))
    tol_list = tuple(float(t) for t in tolerances_pct)
    ctrl_list = tuple(as_spec(c) for c in controllers)
    labels = [c.label for c in ctrl_list]
    if len(set(labels)) != len(labels):
        raise ExperimentError(f"duplicate sweep controllers: {labels}")
    if gpu is not None and cluster is not None:
        raise ExperimentError(
            "a sweep is either hetero (gpu=...) or a cluster "
            "(cluster=...), not both"
        )
    if gpu is not None:
        non_hetero = [c.name for c in ctrl_list if not c.info.hetero]
        if non_hetero:
            raise ExperimentError(
                f"hetero sweep needs hetero budget-split controllers; "
                f"{non_hetero} are per-socket policies"
            )
        baseline: PolicySpec = make_spec(
            "hetero-static", budget_w=ctrl_list[0].params.budget_w
        )
    elif cluster is not None:
        non_fleet = [c.name for c in ctrl_list if not c.info.fleet]
        if non_fleet:
            raise ExperimentError(
                f"cluster sweep needs fleet partitioning controllers; "
                f"{non_fleet} are per-socket policies"
            )
        baseline = make_spec(
            "fleet-static", budget_w=ctrl_list[0].params.budget_w
        )
    else:
        baseline = as_spec("default")
    base_cfg = base_cfg or ControllerConfig()
    noise = noise or NoiseConfig()
    engine_cfg = engine_cfg or EngineConfig()

    specs: list[RunSpec] = []
    cells: list[tuple[str, str, float] | None] = []
    for app_name in app_list:
        specs.append(
            RunSpec(
                app_name=app_name,
                controller=baseline,
                controller_cfg=base_cfg,
                runs=runs,
                base_seed=cell_seed(app_name, baseline.label),
                app_scale=app_scale,
                noise=noise,
                engine_cfg=engine_cfg,
                faults=faults,
                engine=engine,
                gpu=gpu,
                cluster=cluster,
                socket=socket,
                label=f"{app_name}/{baseline.label}",
            )
        )
        cells.append(None)
        for tol in tol_list:
            cfg = with_slowdown(base_cfg, tol)
            for ctrl in ctrl_list:
                specs.append(
                    RunSpec(
                        app_name=app_name,
                        controller=ctrl,
                        controller_cfg=cfg,
                        runs=runs,
                        base_seed=cell_seed(app_name, ctrl.label, tol),
                        app_scale=app_scale,
                        noise=noise,
                        engine_cfg=engine_cfg,
                        faults=faults,
                        engine=engine,
                        gpu=gpu,
                        cluster=cluster,
                        socket=socket,
                        label=f"{app_name}/{ctrl.label}@{tol:.0f}%",
                    )
                )
                cells.append((app_name, ctrl.label, tol))
    return specs, cells


def run_sweep(
    *,
    apps: Iterable[str] | None = None,
    tolerances_pct: Iterable[float] = SWEEP_TOLERANCES_PCT,
    runs: int = 10,
    controllers: Iterable[PolicySpec | str] = ("duf", "dufp"),
    base_cfg: ControllerConfig | None = None,
    noise: NoiseConfig | None = None,
    engine_cfg: EngineConfig | None = None,
    app_scale: float = 1.0,
    faults: FaultPlan | None = None,
    engine: str = "scalar",
    gpu: GPUNodeConfig | None = None,
    cluster: ClusterSpec | None = None,
    socket: SocketConfig | None = None,
    workers: int = 1,
    cache: ResultCache | str | None = None,
    shard_size: int | None = None,
) -> SweepResult:
    """Run the full evaluation grid.

    ``runs`` trades fidelity for time: the paper's protocol is 10; the
    benchmarks default to fewer to stay interactive.  ``workers``
    parallelises over grid cells (results are identical at any worker
    count); ``cache`` — a directory or :class:`ResultCache` — skips
    cells whose results are already on disk.  ``engine="batch"``
    executes every cell through the vectorized lockstep engine —
    numerically identical results, shared cache entries, and with
    ``workers=1`` all cells advance in one batch.  With more workers
    the grid is bin-packed into per-worker shards, each shard runs as
    one lockstep batch in its process, and completed shards write
    through to the cache as they finish; ``shard_size`` caps cells per
    shard (see :func:`repro.experiments.executor.plan_shards`).

    ``gpu`` runs the whole grid as CPU+GPU co-simulation cells under
    hetero budget-split controllers; ``cluster`` runs it as multi-node
    fleet cells under fleet partitioning policies; see
    :func:`sweep_specs`.
    """
    specs, cells = sweep_specs(
        apps=apps,
        tolerances_pct=tolerances_pct,
        runs=runs,
        controllers=controllers,
        base_cfg=base_cfg,
        noise=noise,
        engine_cfg=engine_cfg,
        app_scale=app_scale,
        faults=faults,
        engine=engine,
        gpu=gpu,
        cluster=cluster,
        socket=socket,
    )
    app_list = tuple(a.upper() for a in (apps or application_names()))
    tol_list = tuple(float(t) for t in tolerances_pct)
    results, summary = run_specs(
        specs, workers=workers, cache=cache, shard_size=shard_size
    )

    result = SweepResult(
        tolerances_pct=tol_list, apps=app_list, execution=summary
    )
    for spec, cell, proto in zip(specs, cells, results):
        if cell is None:
            result.defaults[spec.app_name] = proto
    for spec, cell, proto in zip(specs, cells, results):
        if cell is not None:
            result.comparisons[cell] = compare(
                proto, result.defaults[spec.app_name]
            )
    return result
