"""The evaluation sweep behind Figures 3 and 4.

One sweep runs every application under the default configuration, DUF
and DUFP at each tolerated slowdown (the paper uses 0, 5, 10 and 20 %),
through the full measurement protocol.  Figures 3a/3b/3c and 4 are
different projections of the same sweep, so the sweep result carries
all four metrics and the figure modules only format them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..config import ControllerConfig, EngineConfig, NoiseConfig, with_slowdown
from ..core.baselines import DefaultController
from ..core.duf import DUF
from ..core.dufp import DUFP
from ..errors import ExperimentError
from ..workloads.catalog import application_names, build_application
from .protocol import Comparison, ProtocolResult, compare, run_protocol

__all__ = ["SweepResult", "run_sweep", "SWEEP_TOLERANCES_PCT"]

#: The paper's tolerated-slowdown grid, percent.
SWEEP_TOLERANCES_PCT: tuple[float, ...] = (0.0, 5.0, 10.0, 20.0)


@dataclass
class SweepResult:
    """All comparisons of one evaluation sweep."""

    tolerances_pct: tuple[float, ...]
    apps: tuple[str, ...]
    #: (app, controller, tolerance_pct) -> Comparison
    comparisons: dict[tuple[str, str, float], Comparison] = field(
        default_factory=dict
    )
    #: app -> default-config protocol result (the denominators).
    defaults: dict[str, ProtocolResult] = field(default_factory=dict)

    def get(self, app: str, controller: str, tolerance_pct: float) -> Comparison:
        key = (app.upper(), controller, float(tolerance_pct))
        if key not in self.comparisons:
            raise ExperimentError(f"sweep has no entry {key}")
        return self.comparisons[key]

    def configurations(self) -> Iterable[tuple[str, str, float]]:
        return self.comparisons.keys()

    def respected_count(
        self, controller: str = "dufp", slack: float = 0.5
    ) -> tuple[int, int]:
        """(#configurations within tolerance, #configurations).

        ``slack`` (percentage points) absorbs measurement variation:
        the paper's Fig. 3a counts sub-noise slowdowns at 0 % tolerance
        as respected (its stated violations are ≥ ~1 %).
        """
        total = within = 0
        for (app, ctrl, tol), cmp_ in self.comparisons.items():
            if ctrl != controller:
                continue
            total += 1
            if cmp_.within_tolerance(tol, slack):
                within += 1
        return within, total


def run_sweep(
    *,
    apps: Iterable[str] | None = None,
    tolerances_pct: Iterable[float] = SWEEP_TOLERANCES_PCT,
    runs: int = 10,
    controllers: Iterable[str] = ("duf", "dufp"),
    base_cfg: ControllerConfig | None = None,
    noise: NoiseConfig | None = None,
    engine_cfg: EngineConfig | None = None,
    app_scale: float = 1.0,
) -> SweepResult:
    """Run the full evaluation grid.

    ``runs`` trades fidelity for time: the paper's protocol is 10; the
    benchmarks default to fewer to stay interactive.
    """
    app_list = tuple(a.upper() for a in (apps or application_names()))
    tol_list = tuple(float(t) for t in tolerances_pct)
    ctrl_list = tuple(controllers)
    for c in ctrl_list:
        if c not in ("duf", "dufp"):
            raise ExperimentError(f"unknown sweep controller {c!r}")
    base_cfg = base_cfg or ControllerConfig()
    result = SweepResult(tolerances_pct=tol_list, apps=app_list)

    for app_name in app_list:
        app = build_application(app_name, scale=app_scale)
        default = run_protocol(
            app,
            DefaultController,
            controller_cfg=base_cfg,
            runs=runs,
            noise=noise,
            engine_cfg=engine_cfg,
        )
        result.defaults[app_name] = default
        for tol in tol_list:
            cfg = with_slowdown(base_cfg, tol)
            for ctrl_name in ctrl_list:
                factory = (
                    (lambda: DUF(cfg)) if ctrl_name == "duf" else (lambda: DUFP(cfg))
                )
                res = run_protocol(
                    app,
                    factory,
                    controller_cfg=cfg,
                    runs=runs,
                    noise=noise,
                    engine_cfg=engine_cfg,
                )
                result.comparisons[(app_name, ctrl_name, tol)] = compare(
                    res, default
                )
    return result
