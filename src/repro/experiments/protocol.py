"""The measurement protocol: repeated runs, trimming, ratios.

Implements Section V's statistics: per configuration the harness
performs N (default 10) seeded runs, drops the lowest- and highest-
execution-time runs, and reports every metric averaged over the kept
runs.  Comparisons are expressed as percentages over the application's
default-configuration values, with min/max error bars over the kept
runs — the exact quantities plotted in Figures 3 and 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..analysis.stats import ErrorBar, error_bar, keep_indices_drop_extremes
from ..config import (
    ControllerConfig,
    EngineConfig,
    MachineConfig,
    NoiseConfig,
    SocketConfig,
    yeti_socket_config,
)
from ..core.base import Controller
from ..core.registry import PolicySpec, as_spec
from ..errors import ExperimentError
from ..sim.engine import SimulationEngine
from ..sim.faults import FaultPlan
from ..sim.machine import SimulatedMachine
from ..sim.result import RunResult
from ..sim.run import build_engine
from ..sim.trace import TraceSink
from ..workloads.application import Application

__all__ = [
    "ProtocolResult",
    "Comparison",
    "build_protocol",
    "fold_protocol",
    "run_protocol",
    "run_hetero_protocol",
    "run_cluster_protocol",
    "compare",
]

#: Default number of runs per configuration (paper: 10).
DEFAULT_RUNS = 10


@dataclass
class ProtocolResult:
    """Raw per-run metrics for one (application, controller) config."""

    app_name: str
    controller_name: str
    times_s: list[float] = field(default_factory=list)
    package_power_w: list[float] = field(default_factory=list)
    dram_power_w: list[float] = field(default_factory=list)
    total_energy_j: list[float] = field(default_factory=list)
    #: The last run's full result, kept for trace-based figures.
    last_run: RunResult | None = None

    @property
    def keep(self) -> list[int]:
        """Kept run indices after trimming by execution time."""
        return keep_indices_drop_extremes(self.times_s)

    def bar(self, metric: str) -> ErrorBar:
        values = getattr(self, metric)
        return error_bar(values, self.keep)

    @property
    def mean_time_s(self) -> float:
        return self.bar("times_s").mean

    @property
    def mean_package_power_w(self) -> float:
        return self.bar("package_power_w").mean

    @property
    def mean_dram_power_w(self) -> float:
        return self.bar("dram_power_w").mean

    @property
    def mean_total_energy_j(self) -> float:
        return self.bar("total_energy_j").mean


def build_protocol(
    application: Application,
    controller: "PolicySpec | str | Callable[[], Controller]",
    *,
    controller_cfg: ControllerConfig | None = None,
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
    noise: NoiseConfig | None = None,
    engine_cfg: EngineConfig | None = None,
    socket_count: int = 1,
    record_trace: bool = False,
    socket: SocketConfig | None = None,
    trace_sink: TraceSink | None = None,
    faults: FaultPlan | None = None,
) -> tuple[ProtocolResult, list[SimulationEngine]]:
    """The protocol's result shell plus one unrun engine per repetition.

    Splitting construction from execution lets callers choose *how* the
    repetitions run: sequentially (:func:`run_protocol` with the scalar
    engine), or in lockstep through :func:`repro.sim.batch.run_batch` —
    possibly batched together with the engines of *other* protocol
    cells.  Seeds, machines and trace wiring are identical to the
    sequential path, so the folded result does not depend on the
    execution strategy.
    """
    if runs < 1:
        raise ExperimentError("need at least one run")
    noise = noise or NoiseConfig()
    spec: PolicySpec | None = None
    if not callable(controller) or isinstance(controller, str):
        spec = as_spec(controller)
    result = ProtocolResult(
        app_name=application.name,
        controller_name=spec.label if spec is not None else "",
    )
    cfg = controller_cfg or ControllerConfig()
    engines: list[SimulationEngine] = []
    for r in range(runs):
        machine = None
        if socket is not None:
            machine = SimulatedMachine(
                MachineConfig(socket=socket, socket_count=socket_count)
            )
        factory = spec.build(cfg) if spec is not None else controller
        engines.append(
            build_engine(
                application,
                factory,
                controller_cfg=cfg,
                machine=machine,
                noise=noise,
                engine_cfg=engine_cfg,
                socket_count=socket_count,
                seed=noise.seed + 1009 * r + base_seed,
                record_trace=record_trace
                or (trace_sink is None and r == runs - 1),
                trace_sink=trace_sink if r == runs - 1 else None,
                faults=faults,
            )
        )
    return result, engines


def fold_protocol(
    result: ProtocolResult, runs: list[RunResult]
) -> ProtocolResult:
    """Fold per-repetition results into a :func:`build_protocol` shell."""
    for run in runs:
        result.times_s.append(run.execution_time_s)
        result.package_power_w.append(run.avg_package_power_w)
        result.dram_power_w.append(run.avg_dram_power_w)
        result.total_energy_j.append(run.total_energy_j)
        result.last_run = run
        if not result.controller_name:
            result.controller_name = run.controller_name
    return result


def run_protocol(
    application: Application,
    controller: "PolicySpec | str | Callable[[], Controller]",
    *,
    controller_cfg: ControllerConfig | None = None,
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
    noise: NoiseConfig | None = None,
    engine_cfg: EngineConfig | None = None,
    socket_count: int = 1,
    record_trace: bool = False,
    socket: SocketConfig | None = None,
    trace_sink: TraceSink | None = None,
    faults: FaultPlan | None = None,
    engine: str = "scalar",
) -> ProtocolResult:
    """Execute ``runs`` seeded repetitions of one configuration.

    ``controller`` is a registry selection — a
    :class:`~repro.core.registry.PolicySpec`, a policy id string
    (``"dufp"``, ``"budget:watts=95"``) — or, for ad-hoc callers, a
    plain per-socket controller factory.  Registry selections resolve
    to a *fresh* factory every run, so policies with cross-socket
    shared state (the budget coordinator) never leak between runs, and
    the reported controller name comes from registry metadata rather
    than a throwaway instance.

    ``socket`` overrides the default yeti-2 socket model (a fresh
    machine is built from it for every run — machines are stateful).
    ``trace_sink`` is attached to the *last* run — the run whose trace
    the protocol has always kept — replacing the forced in-memory
    recording, so streamed protocols stay O(1) in RAM.  ``faults``
    applies one :class:`~repro.sim.faults.FaultPlan` to every run; each
    run's injector draws from its own per-run seed, so repetitions see
    independent fault realisations of the same plan.

    ``engine`` selects the execution strategy: ``"scalar"`` runs each
    repetition through the per-tick loop, ``"batch"`` advances all
    repetitions in lockstep through the vectorized engine
    (:mod:`repro.sim.batch`).  Results are numerically identical either
    way (see ``docs/BATCHING.md``); batch is simply faster.
    """
    if engine not in ("scalar", "batch"):
        raise ExperimentError(f"unknown engine {engine!r}")
    result, engines = build_protocol(
        application,
        controller,
        controller_cfg=controller_cfg,
        runs=runs,
        base_seed=base_seed,
        noise=noise,
        engine_cfg=engine_cfg,
        socket_count=socket_count,
        record_trace=record_trace,
        socket=socket,
        trace_sink=trace_sink,
        faults=faults,
    )
    if engine == "batch":
        from ..sim.batch import run_batch

        run_results = run_batch(engines)
    else:
        run_results = [e.run() for e in engines]
    return fold_protocol(result, run_results)


def run_hetero_protocol(
    application: Application,
    controller: "PolicySpec | str",
    gpu,
    *,
    controller_cfg: ControllerConfig | None = None,
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
    noise: NoiseConfig | None = None,
    engine_cfg: EngineConfig | None = None,
    socket: SocketConfig | None = None,
    trace_sink: TraceSink | None = None,
    faults: FaultPlan | None = None,
) -> ProtocolResult:
    """Execute ``runs`` seeded repetitions of one *heterogeneous* cell.

    The CPU+GPU counterpart of :func:`run_protocol`: ``controller``
    selects a hetero budget-split policy from the registry
    (``hetero-static``, ``hetero-coord``, ``hetero-fair``), ``gpu`` is
    the node's :class:`~repro.hardware.gpu.GPUNodeConfig`, and each
    repetition runs the :class:`~repro.sim.hetero.HeteroEngine` with
    the same per-run seed formula as the scalar protocol
    (``noise.seed + 1009·r + base_seed``), so hetero cells trim, cache
    and compare exactly like CPU-only ones.

    Metric mapping onto the :class:`ProtocolResult` columns (documented
    in docs/HETERO.md): ``times_s`` is the node *makespan*,
    ``package_power_w`` the CPU's average power over the makespan,
    ``dram_power_w`` the combined GPUs' average power, and
    ``total_energy_j`` the whole node's energy — so :func:`compare`
    reads "package savings" as CPU savings and "dram savings" as GPU
    savings for hetero cells.
    """
    from ..core.registry import split_policy
    from ..sim.hetero import HeteroEngine

    if runs < 1:
        raise ExperimentError("need at least one run")
    noise = noise or NoiseConfig()
    cfg = controller_cfg or ControllerConfig()
    engine_cfg = engine_cfg or EngineConfig()
    spec = as_spec(controller)
    result = ProtocolResult(
        app_name=application.name, controller_name=spec.label
    )
    for r in range(runs):
        engine = HeteroEngine(
            application=application,
            node=gpu,
            policy=split_policy(spec, cfg),
            cfg=cfg,
            socket_cfg=socket or yeti_socket_config(),
            dt_s=engine_cfg.dt_s,
            seed=noise.seed + 1009 * r + base_seed,
            noise=noise,
            faults=faults,
            trace_sink=trace_sink if r == runs - 1 else None,
        )
        run = engine.run()
        makespan = run.makespan_s or engine_cfg.dt_s
        result.times_s.append(makespan)
        result.package_power_w.append(run.cpu_energy_j / makespan)
        result.dram_power_w.append(run.gpu_energy_j / makespan)
        result.total_energy_j.append(run.total_energy_j)
    return result


def run_cluster_protocol(
    applications: list[Application],
    controller: "PolicySpec | str",
    cluster,
    *,
    controller_cfg: ControllerConfig | None = None,
    runs: int = DEFAULT_RUNS,
    base_seed: int = 0,
    noise: NoiseConfig | None = None,
    engine_cfg: EngineConfig | None = None,
    socket: SocketConfig | None = None,
    trace_sink: TraceSink | None = None,
    faults: FaultPlan | None = None,
) -> ProtocolResult:
    """Execute ``runs`` seeded repetitions of one *cluster* cell.

    The multi-node counterpart of :func:`run_protocol`: ``controller``
    selects a fleet budget-partitioning policy from the registry
    (``fleet-static``, ``fleet-demand``, ``fleet-fair``), ``cluster``
    is the cell's :class:`~repro.cluster.spec.ClusterSpec`, and
    ``applications`` carries one built application per node.  Each
    repetition runs the :class:`~repro.cluster.engine.ClusterEngine`
    with the same per-run seed formula as the scalar protocol
    (``noise.seed + 1009·r + base_seed``), so cluster cells trim,
    cache and compare exactly like CPU-only ones.

    Metric mapping onto the :class:`ProtocolResult` columns (documented
    in docs/CLUSTER.md): ``times_s`` is the fleet *makespan* (slowest
    node), ``package_power_w`` the fleet's average package power over
    the makespan, ``dram_power_w`` the fleet's average DRAM power, and
    ``total_energy_j`` the whole fleet's energy.  ``trace_sink``
    attaches to the *last* run with cluster-global socket ids
    (node i, socket s → ``i·sockets_per_node + s``).
    """
    from ..cluster.engine import ClusterEngine
    from ..core.registry import fleet_policy

    if runs < 1:
        raise ExperimentError("need at least one run")
    noise = noise or NoiseConfig()
    cfg = controller_cfg or ControllerConfig()
    engine_cfg = engine_cfg or EngineConfig()
    spec = as_spec(controller)
    app_name = "+".join(dict.fromkeys(a.name for a in applications))
    result = ProtocolResult(app_name=app_name, controller_name=spec.label)
    for r in range(runs):
        engine = ClusterEngine(
            applications=applications,
            cluster=cluster,
            policy=fleet_policy(spec, cfg),
            controller_cfg=cfg,
            engine_cfg=engine_cfg,
            noise=noise,
            socket=socket,
            seed=noise.seed + 1009 * r + base_seed,
            record_trace=False,
            trace_sink=trace_sink if r == runs - 1 else None,
            faults=faults,
        )
        run = engine.run()
        makespan = run.makespan_s or engine_cfg.dt_s
        result.times_s.append(makespan)
        result.package_power_w.append(run.package_energy_j / makespan)
        result.dram_power_w.append(run.dram_energy_j / makespan)
        result.total_energy_j.append(run.total_energy_j)
    return result


@dataclass(frozen=True)
class Comparison:
    """One configuration expressed relative to the default run.

    Positive ``slowdown_pct`` means the controller made the run slower;
    positive ``*_savings_pct`` means it consumed less than the default.
    Error bars carry the kept runs' min/max, normalised the same way.
    """

    app_name: str
    controller_name: str
    slowdown_pct: ErrorBar
    package_savings_pct: ErrorBar
    dram_savings_pct: ErrorBar
    energy_savings_pct: ErrorBar

    def within_tolerance(self, tolerated_slowdown_pct: float, slack: float = 0.0) -> bool:
        """Did the mean slowdown respect the tolerance (plus slack)?"""
        return self.slowdown_pct.mean <= tolerated_slowdown_pct + slack


def _ratio_bar(values: list[float], keep: list[int], reference: float, *, savings: bool) -> ErrorBar:
    if reference <= 0:
        raise ExperimentError("non-positive reference value")
    if savings:
        pct = [100.0 * (1.0 - values[i] / reference) for i in keep]
    else:
        pct = [100.0 * (values[i] / reference - 1.0) for i in keep]
    return ErrorBar(
        mean=sum(pct) / len(pct), low=min(pct), high=max(pct)
    )


def compare(result: ProtocolResult, default: ProtocolResult) -> Comparison:
    """Express ``result`` as percentages over ``default``'s trimmed means."""
    if result.app_name != default.app_name:
        raise ExperimentError(
            f"comparing different applications: {result.app_name!r} "
            f"vs {default.app_name!r}"
        )
    keep = result.keep
    return Comparison(
        app_name=result.app_name,
        controller_name=result.controller_name,
        slowdown_pct=_ratio_bar(
            result.times_s, keep, default.mean_time_s, savings=False
        ),
        package_savings_pct=_ratio_bar(
            result.package_power_w, keep, default.mean_package_power_w, savings=True
        ),
        dram_savings_pct=_ratio_bar(
            result.dram_power_w, keep, default.mean_dram_power_w, savings=True
        ),
        energy_savings_pct=_ratio_bar(
            result.total_energy_j, keep, default.mean_total_energy_j, savings=True
        ),
    )
