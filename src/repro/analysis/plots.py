"""ASCII plotting: grouped bars and sparklines for terminal reports.

The paper's figures are grouped bar charts (per-app clusters, one bar
per tolerance) and a line plot (Fig. 5).  These renderers produce the
same shapes in plain text so ``python -m repro fig3b`` output can be
eyeballed against the paper directly, without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..errors import ExperimentError

__all__ = ["bar_chart", "grouped_bar_chart", "sparkline"]

#: Eighth-block characters for sub-cell bar resolution.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(value: float, scale: float, width: int) -> str:
    """A left-aligned bar for ``value`` at ``scale`` units per cell."""
    cells = max(value, 0.0) / scale if scale > 0 else 0.0
    cells = min(cells, float(width))
    full = int(cells)
    frac = int(round((cells - full) * 8))
    if frac == 8:
        full, frac = full + 1, 0
    text = "█" * full + (_BLOCKS[frac] if frac else "")
    return text.ljust(width)


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 40,
    unit: str = "%",
    title: str | None = None,
) -> str:
    """Horizontal bars, one per labelled value (negatives marked)."""
    if not values:
        raise ExperimentError("nothing to plot")
    label_w = max(len(k) for k in values)
    peak = max((abs(v) for v in values.values()), default=0.0)
    scale = peak / width if peak > 0 else 1.0
    lines = [title] if title else []
    for label, v in values.items():
        bar = _bar(abs(v), scale, width)
        sign = "-" if v < 0 else " "
        lines.append(f"{label.rjust(label_w)} |{sign}{bar}| {v:+.2f} {unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Mapping[str, float]],
    *,
    width: int = 30,
    unit: str = "%",
    title: str | None = None,
) -> str:
    """Per-group clusters with one bar per series (the paper's Fig. 3 form).

    ``series`` maps a series label (e.g. ``"dufp @10%"``) to its value
    per group (e.g. per application).
    """
    if not groups or not series:
        raise ExperimentError("nothing to plot")
    series_w = max(len(s) for s in series)
    peak = max(
        (abs(v) for per_group in series.values() for v in per_group.values()),
        default=0.0,
    )
    scale = peak / width if peak > 0 else 1.0
    lines = [title] if title else []
    for group in groups:
        lines.append(f"{group}")
        for label, per_group in series.items():
            if group not in per_group:
                continue
            v = per_group[group]
            sign = "-" if v < 0 else " "
            lines.append(
                f"  {label.rjust(series_w)} |{sign}{_bar(abs(v), scale, width)}| "
                f"{v:+.2f} {unit}"
            )
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, lo: float | None = None, hi: float | None = None) -> str:
    """One-line trace rendering (Fig. 5-style), 8 vertical levels."""
    if not values:
        raise ExperimentError("nothing to plot")
    vmin = lo if lo is not None else min(values)
    vmax = hi if hi is not None else max(values)
    if not (math.isfinite(vmin) and math.isfinite(vmax)):
        raise ExperimentError("non-finite plot bounds")
    span = vmax - vmin
    out = []
    for v in values:
        if span <= 0:
            level = 4
        else:
            level = int(round((min(max(v, vmin), vmax) - vmin) / span * 7))
        out.append(_BLOCKS[level + 1])
    return "".join(out)
