"""The paper's measurement statistics.

Section V: "We performed 10 runs of each experiment.  To mitigate
outliers, we removed the lowest and highest execution times and
returned the average over the remaining 8 executions."  Error bars show
the minimum and maximum observed values over the kept runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ExperimentError

__all__ = [
    "trimmed_mean_drop_extremes",
    "ErrorBar",
    "error_bar",
    "percent_ratio_series",
    "keep_indices_drop_extremes",
]


def keep_indices_drop_extremes(values: Sequence[float]) -> list[int]:
    """Indices kept after dropping one minimum and one maximum.

    With fewer than three values nothing is dropped (degenerate runs in
    tests).  Ties drop exactly one instance each, like sorting would.
    """
    n = len(values)
    if n == 0:
        raise ExperimentError("no values to trim")
    if n < 3:
        return list(range(n))
    lo = min(range(n), key=lambda i: values[i])
    hi = max(
        (i for i in range(n) if i != lo), key=lambda i: values[i]
    )
    return [i for i in range(n) if i not in (lo, hi)]


def trimmed_mean_drop_extremes(values: Sequence[float]) -> float:
    """Mean after dropping the single lowest and highest value."""
    kept = keep_indices_drop_extremes(values)
    return math.fsum(values[i] for i in kept) / len(kept)


@dataclass(frozen=True)
class ErrorBar:
    """A mean with min/max bounds over the kept runs."""

    mean: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if not self.low <= self.mean <= self.high:
            raise ExperimentError(
                f"inconsistent error bar: {self.low} <= {self.mean} <= {self.high}"
            )

    @property
    def spread(self) -> float:
        return self.high - self.low


def error_bar(values: Sequence[float], keep: Sequence[int] | None = None) -> ErrorBar:
    """Mean/min/max over ``values`` restricted to ``keep`` indices.

    The paper trims by *execution time* and then reports every metric
    over the same kept runs, so callers pass the keep-set derived from
    the times.
    """
    if keep is None:
        keep = keep_indices_drop_extremes(values)
    if not keep:
        raise ExperimentError("empty keep set")
    kept = [values[i] for i in keep]
    return ErrorBar(
        mean=math.fsum(kept) / len(kept), low=min(kept), high=max(kept)
    )


def percent_ratio_series(
    values: Sequence[float], reference: float
) -> list[float]:
    """Each value as a percentage of ``reference`` (the paper's y-axes)."""
    if reference <= 0:
        raise ExperimentError("reference must be positive")
    return [100.0 * v / reference for v in values]
