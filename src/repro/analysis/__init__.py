"""Statistics and reporting helpers shared by the experiment harnesses."""

from .stats import (
    trimmed_mean_drop_extremes,
    ErrorBar,
    error_bar,
    percent_ratio_series,
)
from .tables import format_table
from .series import resample_series, time_weighted_average

__all__ = [
    "trimmed_mean_drop_extremes",
    "ErrorBar",
    "error_bar",
    "percent_ratio_series",
    "format_table",
    "resample_series",
    "time_weighted_average",
]
