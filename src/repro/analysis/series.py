"""Time-series helpers for traces (Fig. 5-style outputs)."""

from __future__ import annotations

from typing import Sequence

from ..errors import ExperimentError

__all__ = ["resample_series", "time_weighted_average"]


def resample_series(
    times: Sequence[float],
    values: Sequence[float],
    interval_s: float,
) -> tuple[list[float], list[float]]:
    """Downsample a step series onto a regular grid (sample-and-hold).

    ``times`` are the *end* times of each step sample, ascending.
    Returns grid times and the value holding at each grid point.
    """
    if len(times) != len(values):
        raise ExperimentError("times/values length mismatch")
    if not times:
        raise ExperimentError("empty series")
    if interval_s <= 0:
        raise ExperimentError("interval must be positive")
    grid_times: list[float] = []
    grid_values: list[float] = []
    t = interval_s
    idx = 0
    end = times[-1]
    while t <= end + 1e-12:
        while idx < len(times) - 1 and times[idx] < t:
            idx += 1
        grid_times.append(t)
        grid_values.append(values[idx])
        t += interval_s
    return grid_times, grid_values


def time_weighted_average(
    times: Sequence[float], values: Sequence[float]
) -> float:
    """Average of a step series weighted by step durations.

    ``times`` are step end times starting after 0; the first step spans
    ``[0, times[0]]``.
    """
    if len(times) != len(values) or not times:
        raise ExperimentError("invalid series")
    total = 0.0
    prev = 0.0
    for t, v in zip(times, values):
        if t < prev:
            raise ExperimentError("times must be ascending")
        total += v * (t - prev)
        prev = t
    if prev <= 0:
        raise ExperimentError("series spans no time")
    return total / prev
