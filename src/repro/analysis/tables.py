"""Fixed-width ASCII tables for experiment reports."""

from __future__ import annotations

from typing import Sequence

from ..errors import ExperimentError

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render rows as a fixed-width table with a header rule."""
    if not headers:
        raise ExperimentError("table needs headers")
    cells: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row width {len(row)} does not match {len(headers)} headers"
            )
        cells.append(
            [
                float_fmt.format(v) if isinstance(v, float) else str(v)
                for v in row
            ]
        )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in cells)) if cells else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(r[c].rjust(widths[c]) for c in range(len(headers))))
    return "\n".join(lines)
