"""repro — reproduction of *Combining Uncore Frequency and Dynamic Power
Capping to Improve Power Savings* (Amina Guermouche, IPDPSW 2022).

The package provides:

* a simulated Skylake-SP substrate (:mod:`repro.hardware`) with RAPL
  power capping, uncore frequency scaling, DVFS and roofline execution;
* user-space views of that hardware (:mod:`repro.interfaces`) and a
  PAPI-style measurement layer (:mod:`repro.papi`);
* phase-level models of the paper's ten applications
  (:mod:`repro.workloads`);
* the DUF and DUFP controllers plus baselines (:mod:`repro.core`);
* a co-simulation engine (:mod:`repro.sim`) and the experiment
  harnesses that regenerate every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro import run_application, DUFP, ControllerConfig, build_application

    app = build_application("CG")
    cfg = ControllerConfig(tolerated_slowdown=0.10)
    result = run_application(app, lambda: DUFP(cfg), controller_cfg=cfg)
    print(result.execution_time_s, result.avg_package_power_w)
"""

from .config import (
    ControllerConfig,
    EngineConfig,
    MachineConfig,
    NoiseConfig,
    SocketConfig,
    with_slowdown,
    yeti_machine_config,
    yeti_socket_config,
)
from .core import (
    DNPCLike,
    DUF,
    DUFP,
    Controller,
    DefaultController,
    PolicySpec,
    StaticPowerCap,
    StaticUncore,
    TimeWindowCap,
    controller_factory,
    make_spec,
    parse_policy,
    policy_names,
    register_policy,
)
from .errors import FaultInjectionError, ReproError
from .sim import (
    FaultPlan,
    RunResult,
    SimulatedMachine,
    parse_fault_plan,
    run_application,
    yeti_machine,
)
from .workloads import Application, Phase, application_names, build_application

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ControllerConfig",
    "EngineConfig",
    "MachineConfig",
    "NoiseConfig",
    "SocketConfig",
    "with_slowdown",
    "yeti_machine_config",
    "yeti_socket_config",
    "DUF",
    "DUFP",
    "DNPCLike",
    "Controller",
    "DefaultController",
    "StaticPowerCap",
    "StaticUncore",
    "TimeWindowCap",
    "PolicySpec",
    "controller_factory",
    "make_spec",
    "parse_policy",
    "policy_names",
    "register_policy",
    "ReproError",
    "FaultInjectionError",
    "FaultPlan",
    "parse_fault_plan",
    "RunResult",
    "SimulatedMachine",
    "run_application",
    "yeti_machine",
    "Application",
    "Phase",
    "application_names",
    "build_application",
]
