"""cpufreq sysfs view: frequencies and governor as Linux reports them.

The experiments read ``scaling_cur_freq`` to produce Fig. 5 (the CPU
frequency trace of core 0).  Values use cpufreq's kHz convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FrequencyError
from ..hardware.dvfs import PStateDriver
from ..hardware.epb import EPBModel, EPP_PREFERENCE_NAMES

__all__ = ["CpufreqView"]

#: HWP preference reported when the socket has no EPB/EPP model — the
#: kernel's balanced default.
_EPP_NEUTRAL = 128


@dataclass
class CpufreqView:
    """Read-only cpufreq attributes for the cores of one socket."""

    dvfs: PStateDriver
    #: The socket's EPB/EPP model, when configured; ``None`` makes the
    #: HWP attributes below report the kernel's neutral defaults, the
    #: way ``intel_pstate`` fabricates them on non-HWP parts.
    epb: EPBModel | None = None

    @property
    def scaling_cur_freq_khz(self) -> int:
        """Current core frequency in kHz (all cores clock together)."""
        return int(self.dvfs.effective_freq() / 1e3)

    @property
    def scaling_min_freq_khz(self) -> int:
        return int(self.dvfs.config.min_freq_hz / 1e3)

    @property
    def scaling_max_freq_khz(self) -> int:
        return int(self.dvfs.config.max_freq_hz / 1e3)

    @property
    def base_frequency_khz(self) -> int:
        """intel_pstate's ``base_frequency`` attribute."""
        return int(self.dvfs.config.base_freq_hz / 1e3)

    @property
    def scaling_governor(self) -> str:
        return self.dvfs.governor.name

    @property
    def scaling_available_frequencies_khz(self) -> tuple[int, ...]:
        return tuple(int(f / 1e3) for f in self.dvfs.available_pstates())

    def aperf_mperf_freq_hz(self, aperf_delta: int, mperf_delta: int) -> float:
        """Average frequency over an interval, the way turbostat derives it."""
        if mperf_delta <= 0:
            raise FrequencyError("aperf_mperf_freq_hz: non-positive MPERF delta")
        return self.dvfs.measured_freq(aperf_delta, mperf_delta)

    # -- HWP-shaped attributes (intel_pstate sysfs layout) ---------------------

    @property
    def energy_performance_preference_raw(self) -> int:
        """The numeric EPP byte (0 = performance, 255 = power)."""
        return self.epb.epp if self.epb is not None else _EPP_NEUTRAL

    @property
    def energy_performance_preference(self) -> str:
        """The sysfs preference string (named anchor or raw number)."""
        raw = self.energy_performance_preference_raw
        return EPP_PREFERENCE_NAMES.get(raw, str(raw))

    @property
    def energy_performance_available_preferences(self) -> tuple[str, ...]:
        """The named anchors, as sysfs lists them."""
        return ("default",) + tuple(EPP_PREFERENCE_NAMES.values())

    @property
    def energy_perf_bias(self) -> int:
        """The legacy EPB knob (0 = performance, 15 = power)."""
        return self.epb.epb if self.epb is not None else 6
