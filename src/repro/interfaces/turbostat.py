"""A turbostat-style reporter over run traces.

``turbostat`` is how one watches frequencies/power/temperature on the
real machine; this gives the simulated machine the same operator view:
per-interval rows of core/uncore frequency, package and DRAM power, the
active cap and (when the thermal model is on) package temperature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.tables import format_table
from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - avoids an interfaces <-> sim cycle
    from ..sim.result import SocketResult

__all__ = ["TurbostatRow", "turbostat_report", "turbostat_rows"]


@dataclass(frozen=True)
class TurbostatRow:
    """One reporting interval."""

    time_s: float
    avg_ghz: float
    uncore_ghz: float
    pkg_watt: float
    ram_watt: float
    cap_watt: float
    gflops: float


def _aggregate(samples, start_idx: int, end_idx: int) -> TurbostatRow:
    window = samples[start_idx:end_idx]
    prev_t = samples[start_idx - 1].time_s if start_idx > 0 else 0.0
    total_dt = window[-1].time_s - prev_t
    if total_dt <= 0:
        raise SimulationError("empty turbostat interval")

    def mean(attr: str) -> float:
        acc = 0.0
        t0 = prev_t
        for s in window:
            acc += getattr(s, attr) * (s.time_s - t0)
            t0 = s.time_s
        return acc / total_dt

    return TurbostatRow(
        time_s=window[-1].time_s,
        avg_ghz=mean("core_freq_hz") / 1e9,
        uncore_ghz=mean("uncore_freq_hz") / 1e9,
        pkg_watt=mean("package_power_w"),
        ram_watt=mean("dram_power_w"),
        cap_watt=window[-1].cap_w,
        gflops=mean("flops_rate") / 1e9,
    )


def turbostat_rows(
    socket: SocketResult, interval_s: float = 1.0
) -> list[TurbostatRow]:
    """Aggregate a socket's trace into reporting intervals."""
    if not socket.trace:
        raise SimulationError("run recorded no trace")
    if interval_s <= 0:
        raise SimulationError("interval must be positive")
    rows: list[TurbostatRow] = []
    start = 0
    next_t = interval_s
    for i, s in enumerate(socket.trace):
        if s.time_s + 1e-12 >= next_t:
            rows.append(_aggregate(socket.trace, start, i + 1))
            start = i + 1
            next_t += interval_s
    if start < len(socket.trace):
        rows.append(_aggregate(socket.trace, start, len(socket.trace)))
    return rows


def turbostat_report(socket: SocketResult, interval_s: float = 1.0) -> str:
    """Render the trace like a turbostat session."""
    rows = turbostat_rows(socket, interval_s)
    return format_table(
        ["Time_s", "Avg_GHz", "UNC_GHz", "PkgWatt", "RAMWatt", "Cap_W", "GFLOPS"],
        [
            (
                r.time_s,
                r.avg_ghz,
                r.uncore_ghz,
                r.pkg_watt,
                r.ram_watt,
                r.cap_watt,
                r.gflops,
            )
            for r in rows
        ],
        title=f"turbostat (socket {socket.socket_id}, {interval_s:.1f} s intervals)",
    )
