"""User-space views of the simulated hardware.

These modules mimic the Linux interfaces the real DUFP tool stack uses —
``/dev/cpu/*/msr`` (msr-tools), the powercap sysfs tree (libpowercap)
and cpufreq sysfs — so controller code is written against the same
contracts it would meet on metal.
"""

from .msr_tools import MSRTools
from .powercap import PowercapTree, PowercapZone, PowercapConstraint
from .cpufreq import CpufreqView
from .turbostat import TurbostatRow, turbostat_report, turbostat_rows

__all__ = [
    "MSRTools",
    "PowercapTree",
    "PowercapZone",
    "PowercapConstraint",
    "CpufreqView",
    "TurbostatRow",
    "turbostat_report",
    "turbostat_rows",
]
