"""msr-tools-style access: ``rdmsr``/``wrmsr`` with field selection.

The real DUF accesses the uncore ratio MSR through ``/dev/cpu/*/msr``.
:class:`MSRTools` wraps a socket's :class:`~repro.hardware.msr.MSRFile`
with the same conveniences the command-line tools offer: hex parsing,
bit-range extraction (``rdmsr -f hi:lo``) and read-modify-write.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MSRError
from ..hardware.msr import MSRFile, get_bits, set_bits

__all__ = ["MSRTools"]


@dataclass
class MSRTools:
    """User-space MSR accessor bound to one socket's register file."""

    msrs: MSRFile

    def rdmsr(self, address: int | str, field: tuple[int, int] | None = None) -> int:
        """Read an MSR; optionally extract bits ``(hi, lo)`` like ``-f``."""
        addr = self._parse_address(address)
        value = self.msrs.read(addr)
        if field is not None:
            hi, lo = field
            return get_bits(value, hi, lo)
        return value

    def wrmsr(self, address: int | str, value: int) -> None:
        """Write a full 64-bit MSR value."""
        self.msrs.write(self._parse_address(address), value)

    def update_field(self, address: int | str, hi: int, lo: int, bits: int) -> int:
        """Read-modify-write bits ``hi:lo``; returns the new register value."""
        addr = self._parse_address(address)
        new = set_bits(self.msrs.read(addr), hi, lo, bits)
        self.msrs.write(addr, new)
        return new

    @staticmethod
    def _parse_address(address: int | str) -> int:
        if isinstance(address, int):
            return address
        text = address.strip().lower()
        try:
            return int(text, 16 if text.startswith("0x") else 10)
        except ValueError as exc:
            raise MSRError(f"cannot parse MSR address {address!r}") from exc
