"""Linux powercap sysfs emulation (the ``intel-rapl`` control type).

The paper's DUFP performs power capping through the powercap library,
which is a thin wrapper over sysfs nodes like::

    /sys/class/powercap/intel-rapl:0/energy_uj
    /sys/class/powercap/intel-rapl:0/constraint_0_power_limit_uw   # long term
    /sys/class/powercap/intel-rapl:0/constraint_1_power_limit_uw   # short term
    /sys/class/powercap/intel-rapl:0/constraint_0_time_window_us
    /sys/class/powercap/intel-rapl:0:0/energy_uj                   # dram subzone

This module reproduces that tree over the simulated RAPL devices: a
string-keyed file view (:meth:`PowercapTree.read` / ``write``) plus the
object API (:class:`PowercapZone`) the controllers use.  Units match
sysfs: microwatts, microseconds, microjoules.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PowercapError
from ..hardware.rapl import RAPLPackage
from ..units import seconds_to_us, us_to_seconds, uw_to_watts, watts_to_uw

__all__ = ["PowercapConstraint", "PowercapZone", "PowercapTree"]

#: sysfs constraint index of the long-term (PL1) limit.
LONG_TERM = 0
#: sysfs constraint index of the short-term (PL2) limit.
SHORT_TERM = 1


@dataclass
class PowercapConstraint:
    """One ``constraint_<n>_*`` group of a zone."""

    zone: "PowercapZone"
    index: int

    @property
    def name(self) -> str:
        return "long_term" if self.index == LONG_TERM else "short_term"

    @property
    def power_limit_uw(self) -> int:
        pl = self.zone.rapl.pl1 if self.index == LONG_TERM else self.zone.rapl.pl2
        return watts_to_uw(pl.limit_w)

    @power_limit_uw.setter
    def power_limit_uw(self, value: int) -> None:
        self.zone.set_power_limit_uw(self.index, value)

    @property
    def time_window_us(self) -> int:
        pl = self.zone.rapl.pl1 if self.index == LONG_TERM else self.zone.rapl.pl2
        return seconds_to_us(pl.window_s)

    @time_window_us.setter
    def time_window_us(self, value: int) -> None:
        self.zone.set_time_window_us(self.index, value)


@dataclass
class PowercapZone:
    """One powercap zone (``intel-rapl:<socket>`` or its dram subzone)."""

    name: str
    rapl: RAPLPackage
    domain: str = "package"  # "package" | "dram"
    constraints: tuple[PowercapConstraint, ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.domain not in ("package", "dram"):
            raise PowercapError(f"unknown powercap domain {self.domain!r}")
        if self.domain == "package":
            self.constraints = (
                PowercapConstraint(self, LONG_TERM),
                PowercapConstraint(self, SHORT_TERM),
            )
        else:
            # The paper's CPU does not support DRAM power capping; the
            # dram zone is metering-only, exactly as on the testbed.
            self.constraints = ()

    # -- energy metering ---------------------------------------------------------

    @property
    def energy_uj(self) -> int:
        domain = self.rapl.package if self.domain == "package" else self.rapl.dram
        return int(domain.counter * domain.energy_unit_j * 1e6)

    @property
    def max_energy_range_uj(self) -> int:
        domain = self.rapl.package if self.domain == "package" else self.rapl.dram
        return int((1 << domain.counter_bits) * domain.energy_unit_j * 1e6)

    # -- limit programming ----------------------------------------------------------

    def set_power_limit_uw(self, constraint: int, value_uw: int) -> None:
        """Write one constraint's power limit (microwatts).

        Writing a long-term limit above the current short-term limit
        drags the short-term limit up with it (the hardware honours the
        effective minimum, so sysfs accepts either order).
        """
        self._require_package("power limit")
        if value_uw <= 0:
            raise PowercapError("power limit must be positive")
        w = uw_to_watts(value_uw)
        pl1 = self.rapl.pl1.limit_w
        pl2 = self.rapl.pl2.limit_w
        if constraint == LONG_TERM:
            pl1 = w
            pl2 = max(pl2, w)
        elif constraint == SHORT_TERM:
            pl2 = w
            pl1 = min(pl1, w)
        else:
            raise PowercapError(f"zone has no constraint {constraint}")
        self.rapl.set_limits(pl1, pl2)

    def set_both_limits_uw(self, pl1_uw: int, pl2_uw: int) -> None:
        """Atomically program both constraints (what DUFP does)."""
        self._require_package("power limit")
        if pl1_uw <= 0 or pl2_uw <= 0:
            raise PowercapError("power limits must be positive")
        self.rapl.set_limits(uw_to_watts(pl1_uw), uw_to_watts(pl2_uw))

    def set_time_window_us(self, constraint: int, value_us: int) -> None:
        self._require_package("time window")
        if value_us <= 0:
            raise PowercapError("time window must be positive")
        window = us_to_seconds(value_us)
        if constraint == LONG_TERM:
            self.rapl.set_limits(
                self.rapl.pl1.limit_w, self.rapl.pl2.limit_w, pl1_window_s=window
            )
        elif constraint == SHORT_TERM:
            self.rapl.set_limits(
                self.rapl.pl1.limit_w, self.rapl.pl2.limit_w, pl2_window_s=window
            )
        else:
            raise PowercapError(f"zone has no constraint {constraint}")

    def reset(self) -> None:
        """Restore the zone's default limits (DUFP's cap reset)."""
        self._require_package("reset")
        self.rapl.reset_limits()

    def _require_package(self, what: str) -> None:
        if self.domain != "package":
            raise PowercapError(
                f"{what} not supported on the {self.domain} zone "
                "(DRAM capping is unavailable on this CPU)"
            )


class PowercapTree:
    """The whole ``/sys/class/powercap`` view over a set of sockets."""

    def __init__(self, rapls: list[RAPLPackage]):
        if not rapls:
            raise PowercapError("powercap tree needs at least one package")
        self.zones: dict[str, PowercapZone] = {}
        for i, rapl in enumerate(rapls):
            pkg = PowercapZone(f"intel-rapl:{i}", rapl, "package")
            dram = PowercapZone(f"intel-rapl:{i}:0", rapl, "dram")
            self.zones[pkg.name] = pkg
            self.zones[dram.name] = dram

    def zone(self, name: str) -> PowercapZone:
        try:
            return self.zones[name]
        except KeyError:
            raise PowercapError(f"no powercap zone {name!r}") from None

    def package_zone(self, socket_id: int) -> PowercapZone:
        return self.zone(f"intel-rapl:{socket_id}")

    def dram_zone(self, socket_id: int) -> PowercapZone:
        return self.zone(f"intel-rapl:{socket_id}:0")

    # -- string file API (sysfs read/write) ------------------------------------------

    def read(self, path: str) -> str:
        """Read a sysfs attribute, e.g. ``intel-rapl:0/energy_uj``."""
        zone, attr = self._split(path)
        if attr == "name":
            return "package-0" if zone.domain == "package" else "dram"
        if attr == "energy_uj":
            return str(zone.energy_uj)
        if attr == "max_energy_range_uj":
            return str(zone.max_energy_range_uj)
        if attr == "enabled":
            return "1"
        for c in zone.constraints:
            if attr == f"constraint_{c.index}_name":
                return c.name
            if attr == f"constraint_{c.index}_power_limit_uw":
                return str(c.power_limit_uw)
            if attr == f"constraint_{c.index}_time_window_us":
                return str(c.time_window_us)
        raise PowercapError(f"no attribute {attr!r} in zone {zone.name!r}")

    def write(self, path: str, value: str) -> None:
        """Write a sysfs attribute (constraint limits/windows only)."""
        zone, attr = self._split(path)
        try:
            number = int(value)
        except ValueError as exc:
            raise PowercapError(f"non-integer sysfs write {value!r}") from exc
        for c in zone.constraints:
            if attr == f"constraint_{c.index}_power_limit_uw":
                zone.set_power_limit_uw(c.index, number)
                return
            if attr == f"constraint_{c.index}_time_window_us":
                zone.set_time_window_us(c.index, number)
                return
        raise PowercapError(f"attribute {attr!r} is not writable in {zone.name!r}")

    def _split(self, path: str) -> tuple[PowercapZone, str]:
        path = path.strip("/")
        if path.startswith("sys/class/powercap/"):
            path = path[len("sys/class/powercap/") :]
        if "/" not in path:
            raise PowercapError(f"powercap path {path!r} has no attribute part")
        zone_name, attr = path.rsplit("/", 1)
        return self.zone(zone_name), attr
