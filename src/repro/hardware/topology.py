"""Machine topology: sockets, cores and NUMA nodes.

The paper's testbed (``yeti-2`` on Grid'5000) has four Intel Xeon Gold
6130 sockets with 16 cores each and one 64 GiB NUMA node per socket.
DUFP starts one controller instance per socket, so topology objects
carry stable ids the rest of the library keys on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import MachineConfig, SocketConfig, yeti_machine_config
from ..errors import ConfigurationError

__all__ = ["Core", "NUMANode", "Socket", "Machine", "build_machine"]


@dataclass(frozen=True)
class Core:
    """One physical core (hyperthreading disabled, as in the paper)."""

    #: Machine-global core id (OS CPU number).
    cpu_id: int
    #: Parent socket id.
    socket_id: int
    #: Index of the core within its socket.
    local_id: int


@dataclass(frozen=True)
class NUMANode:
    """One NUMA node; the testbed pairs one node with each socket."""

    node_id: int
    socket_id: int
    memory_bytes: int = 64 * 1024**3


@dataclass(frozen=True)
class Socket:
    """One processor package."""

    socket_id: int
    config: SocketConfig
    cores: tuple[Core, ...]
    numa: NUMANode

    @property
    def core_count(self) -> int:
        return len(self.cores)

    def core(self, local_id: int) -> Core:
        """Return the core with the given within-socket index."""
        if not 0 <= local_id < len(self.cores):
            raise ConfigurationError(
                f"socket {self.socket_id} has no core {local_id}"
            )
        return self.cores[local_id]


@dataclass(frozen=True)
class Machine:
    """A complete node: identical sockets plus a flat core list."""

    name: str
    sockets: tuple[Socket, ...]
    config: MachineConfig = field(repr=False, default_factory=yeti_machine_config)

    @property
    def socket_count(self) -> int:
        return len(self.sockets)

    @property
    def total_cores(self) -> int:
        return sum(s.core_count for s in self.sockets)

    def socket(self, socket_id: int) -> Socket:
        if not 0 <= socket_id < len(self.sockets):
            raise ConfigurationError(f"machine has no socket {socket_id}")
        return self.sockets[socket_id]

    def all_cores(self) -> tuple[Core, ...]:
        return tuple(c for s in self.sockets for c in s.cores)

    def core_by_cpu_id(self, cpu_id: int) -> Core:
        """Look up a core by its machine-global OS CPU number."""
        for s in self.sockets:
            for c in s.cores:
                if c.cpu_id == cpu_id:
                    return c
        raise ConfigurationError(f"machine has no cpu {cpu_id}")

    def describe(self) -> dict[str, object]:
        """Table-I style summary of the architecture characteristics."""
        sc = self.sockets[0].config
        return {
            "name": self.name,
            "sockets": self.socket_count,
            "cores": self.total_cores,
            "uncore_freq_ghz": (
                sc.uncore.min_freq_hz / 1e9,
                sc.uncore.max_freq_hz / 1e9,
            ),
            "long_term_w": sc.rapl.pl1_default_w,
            "short_term_w": sc.rapl.pl2_default_w,
        }


def build_machine(config: MachineConfig | None = None) -> Machine:
    """Instantiate the topology described by ``config`` (default: yeti-2).

    Cores are numbered round-robin across sockets — cpu 0 on socket 0,
    cpu 1 on socket 1, … — matching how the paper binds OpenMP threads
    ("bound to cores in a round-robin fashion").
    """
    cfg = config or yeti_machine_config()
    cfg.validate()
    n_sock = cfg.socket_count
    per_sock = cfg.socket.core.count
    sockets = []
    for sid in range(n_sock):
        cores = tuple(
            Core(cpu_id=local * n_sock + sid, socket_id=sid, local_id=local)
            for local in range(per_sock)
        )
        sockets.append(
            Socket(
                socket_id=sid,
                config=cfg.socket,
                cores=cores,
                numa=NUMANode(node_id=sid, socket_id=sid),
            )
        )
    return Machine(name=cfg.name, sockets=tuple(sockets), config=cfg)
