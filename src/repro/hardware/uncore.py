"""Uncore clock domain and the default hardware uncore governor.

The uncore (LLC, mesh interconnect, memory controllers) has its own
clock, bounded by ``MSR_UNCORE_RATIO_LIMIT`` (0x620): bits 6:0 hold the
maximum ratio and bits 14:8 the minimum ratio, both in 100 MHz units.
Writing min == max pins the uncore — this is how DUF actuates it.

When the window is left open the hardware's own governor (UFS) picks a
frequency inside it from observed stall/traffic pressure.  The paper's
baseline ("default uncore frequency scaling") is exactly this governor;
its laziness — it tracks demand only coarsely and keeps the uncore high
whenever any traffic flows — is what DUF improves on, so the model here
errs on the high side the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..config import UncoreConfig
from ..errors import FrequencyError
from .msr import MSR, MSRFile, get_bits, set_bits

__all__ = [
    "UncoreDriver",
    "DefaultUncoreGovernor",
    "TpmiUncore",
    "build_uncore",
]

#: One uncore ratio unit corresponds to 100 MHz.
RATIO_HZ = 100e6


@dataclass
class DefaultUncoreGovernor:
    """The stock hardware UFS policy.

    The real firmware raises the uncore with *any* pressure signal —
    memory traffic or plain core activity — and keeps a generous
    guard-band, so under the ``performance`` cpufreq governor the
    uncore rides near its window maximum whenever the socket is busy,
    even for compute-only work that gets nothing from it.  That
    pessimism is the waste DUF exploits, and the paper's observation
    that the default policy "fails to adapt to the application needs".
    """

    #: Traffic utilisation above which the governor requests the window max.
    saturation_util: float = 0.25
    #: Demand floor applied whenever the cores are busy at all.
    busy_floor: float = 0.95
    #: Core-activity level that counts as "busy".
    busy_threshold: float = 0.02
    #: Per-step smoothing factor (0 = frozen, 1 = immediate).
    response: float = 0.6
    _current_demand: float = 0.0

    def target_freq(
        self, traffic_util: float, busy_util: float, lo_hz: float, hi_hz: float
    ) -> float:
        """Pick a frequency in ``[lo_hz, hi_hz]`` for the observed pressure."""
        for name, v in (("traffic", traffic_util), ("busy", busy_util)):
            if not 0.0 <= v <= 1.0:
                raise FrequencyError(f"{name} utilisation {v!r} outside [0, 1]")
        demand = min(traffic_util / self.saturation_util, 1.0)
        if busy_util >= self.busy_threshold:
            demand = max(demand, self.busy_floor)
        self._current_demand += self.response * (demand - self._current_demand)
        return lo_hz + self._current_demand * (hi_hz - lo_hz)


@dataclass
class UncoreDriver:
    """Uncore clock domain of one socket."""

    config: UncoreConfig
    governor: DefaultUncoreGovernor = field(default_factory=DefaultUncoreGovernor)
    #: Window programmed through MSR 0x620 (Hz).
    window_lo_hz: float = 0.0
    window_hi_hz: float = 0.0
    _freq_hz: float = 0.0
    #: Optional EPB/EPP bias: a callable returning the factor (in
    #: ``[0, 1]``) by which the governor's effective window ceiling is
    #: pulled toward the floor.  ``None`` (the default, and the only
    #: state without an :class:`~repro.config.EPBConfig`) keeps the
    #: legacy window arithmetic untouched.
    epp_bias: Callable[[], float] | None = None

    def __post_init__(self) -> None:
        self.config.validate()
        if self.window_lo_hz == 0.0:
            self.window_lo_hz = self.config.min_freq_hz
        if self.window_hi_hz == 0.0:
            self.window_hi_hz = self.config.max_freq_hz
        if self._freq_hz == 0.0:
            self._freq_hz = self.window_hi_hz

    # -- ratio grid ----------------------------------------------------------

    def snap(self, freq_hz: float) -> float:
        """Snap onto the 100 MHz uncore ratio grid within the config range."""
        cfg = self.config
        if freq_hz <= cfg.min_freq_hz:
            return cfg.min_freq_hz
        if freq_hz >= cfg.max_freq_hz:
            return cfg.max_freq_hz
        steps = round((freq_hz - cfg.min_freq_hz) / cfg.step_hz)
        return cfg.min_freq_hz + steps * cfg.step_hz

    def available_frequencies(self) -> tuple[float, ...]:
        cfg = self.config
        n = int(round((cfg.max_freq_hz - cfg.min_freq_hz) / cfg.step_hz))
        return tuple(cfg.min_freq_hz + i * cfg.step_hz for i in range(n + 1))

    # -- window control (what DUF manipulates) --------------------------------

    def set_window(self, lo_hz: float, hi_hz: float) -> None:
        """Program the min/max ratio window; pins the clock when lo == hi."""
        lo = self.snap(lo_hz)
        hi = self.snap(hi_hz)
        if lo > hi:
            raise FrequencyError(f"uncore window inverted: {lo_hz!r} > {hi_hz!r}")
        self.window_lo_hz = lo
        self.window_hi_hz = hi
        self._freq_hz = min(max(self._freq_hz, lo), hi)

    def pin(self, freq_hz: float) -> None:
        """Pin the uncore to a single frequency (min == max)."""
        f = self.snap(freq_hz)
        self.set_window(f, f)
        self._freq_hz = f

    def release(self) -> None:
        """Re-open the full hardware window (default UFS resumes control)."""
        self.set_window(self.config.min_freq_hz, self.config.max_freq_hz)

    @property
    def frequency_hz(self) -> float:
        return self._freq_hz

    @property
    def pinned(self) -> bool:
        return self.window_lo_hz == self.window_hi_hz

    def advance(self, traffic_util: float, busy_util: float = 0.0) -> None:
        """One simulation step: let the HW governor move inside the window."""
        if self.pinned:
            self._freq_hz = self.window_lo_hz
            return
        hi_hz = self.window_hi_hz
        if self.epp_bias is not None:
            # An energy-leaning EPP shrinks the ceiling the governor may
            # reach; the programmed window (what 0x620 reads back) is
            # unchanged, exactly like firmware-mediated HWP.
            hi_hz = self.window_lo_hz + (
                self.window_hi_hz - self.window_lo_hz
            ) * self.epp_bias()
        target = self.governor.target_freq(
            traffic_util, busy_util, self.window_lo_hz, hi_hz
        )
        self._freq_hz = self.snap(target)

    # -- MSR wiring ----------------------------------------------------------

    def attach_msrs(self, msrs: MSRFile) -> None:
        """Expose MSR_UNCORE_RATIO_LIMIT / MSR_UNCORE_PERF_STATUS."""

        def _write_ratio_limit(value: int) -> None:
            max_ratio = get_bits(value, 6, 0)
            min_ratio = get_bits(value, 14, 8)
            if max_ratio == 0:
                raise FrequencyError("MSR 0x620: zero max ratio")
            self.set_window(min_ratio * RATIO_HZ, max_ratio * RATIO_HZ)

        def _read_perf_status() -> int:
            return set_bits(0, 6, 0, int(round(self._freq_hz / RATIO_HZ)))

        initial = set_bits(
            set_bits(0, 6, 0, int(round(self.config.max_freq_hz / RATIO_HZ))),
            14,
            8,
            int(round(self.config.min_freq_hz / RATIO_HZ)),
        )
        msrs.define(
            MSR.MSR_UNCORE_RATIO_LIMIT, initial=initial, write_hook=_write_ratio_limit
        )
        msrs.define(
            MSR.MSR_UNCORE_PERF_STATUS, writable=False, read_hook=_read_perf_status
        )


@dataclass
class TpmiUncore(UncoreDriver):
    """Multi-die uncore: N independently clocked dies behind one socket.

    TPMI-era parts (Sapphire Rapids onward, pepc's ``Tpmi``/``Uncore``
    modules) expose one uncore frequency domain per compute die.  Each
    die here is a full :class:`UncoreDriver` with its own hardware
    governor; memory traffic lands unevenly across dies according to
    the configured ``die_traffic_spread`` (die 0 hottest), so under the
    stock governor the dies genuinely declock independently.

    Compatibility surface: the legacy socket-wide MSR 0x620 *broadcasts*
    its window to every die (how legacy tooling drives TPMI parts), MSR
    0x621 reads the die-weighted aggregate frequency, and each die *i*
    additionally gets a TPMI-style control/status register pair at
    ``TPMI_UFS_BASE + 2i``.  Single-die configs never construct this
    class — :func:`build_uncore` returns the plain driver, keeping the
    legacy path bit-for-bit.
    """

    dies: list[UncoreDriver] = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        n = self.config.die_count
        if n < 2:
            raise FrequencyError(
                "TpmiUncore requires die_count >= 2; the single-die case "
                "is the legacy UncoreDriver"
            )
        if not self.dies:
            self.dies = [
                UncoreDriver(self.config, governor=DefaultUncoreGovernor())
                for _ in range(n)
            ]

    # -- die layout -----------------------------------------------------------

    def die_weight(self, die: int) -> float:
        """Traffic multiplier of one die (weights average to 1.0)."""
        n = len(self.dies)
        spread = self.config.die_traffic_spread
        return 1.0 + spread * (n - 1 - 2 * die) / (n - 1)

    def die_traffic(self, traffic_util: float, die: int) -> float:
        """The share of socket traffic pressure one die observes."""
        return min(max(traffic_util * self.die_weight(die), 0.0), 1.0)

    def die_loads(self, traffic_util: float) -> tuple[tuple[float, float], ...]:
        """Per-die ``(frequency_hz, traffic_util)`` pairs for the power model."""
        return tuple(
            (d.frequency_hz, self.die_traffic(traffic_util, i))
            for i, d in enumerate(self.dies)
        )

    @property
    def die_frequencies(self) -> tuple[float, ...]:
        return tuple(d.frequency_hz for d in self.dies)

    def _aggregate(self) -> float:
        """Die-weight-averaged frequency: what socket-wide telemetry sees."""
        n = len(self.dies)
        return (
            sum(d.frequency_hz * self.die_weight(i) for i, d in enumerate(self.dies))
            / n
        )

    # -- overridden domain control --------------------------------------------

    def set_window(self, lo_hz: float, hi_hz: float) -> None:
        """Broadcast the socket-wide window (0x620 semantics) to every die."""
        super().set_window(lo_hz, hi_hz)
        for d in self.dies:
            d.set_window(lo_hz, hi_hz)
        self._freq_hz = self._aggregate()

    def advance(self, traffic_util: float, busy_util: float = 0.0) -> None:
        """Advance every die's governor under its share of the traffic."""
        for i, d in enumerate(self.dies):
            d.epp_bias = self.epp_bias
            d.advance(self.die_traffic(traffic_util, i), busy_util)
        self._freq_hz = self._aggregate()

    # -- MSR wiring -----------------------------------------------------------

    def attach_msrs(self, msrs: MSRFile) -> None:
        """Legacy 0x620/0x621 plus one TPMI register pair per die."""
        super().attach_msrs(msrs)
        for i, d in enumerate(self.dies):
            self._attach_die(msrs, i, d)

    def _attach_die(self, msrs: MSRFile, index: int, die: UncoreDriver) -> None:
        def _write_control(value: int) -> None:
            max_ratio = get_bits(value, 6, 0)
            min_ratio = get_bits(value, 14, 8)
            if max_ratio == 0:
                raise FrequencyError(
                    f"TPMI die {index}: zero max ratio"
                )
            die.set_window(min_ratio * RATIO_HZ, max_ratio * RATIO_HZ)
            self._freq_hz = self._aggregate()

        def _read_status() -> int:
            return set_bits(0, 6, 0, int(round(die.frequency_hz / RATIO_HZ)))

        initial = set_bits(
            set_bits(0, 6, 0, int(round(self.config.max_freq_hz / RATIO_HZ))),
            14,
            8,
            int(round(self.config.min_freq_hz / RATIO_HZ)),
        )
        msrs.define(
            MSR.TPMI_UFS_BASE + 2 * index,
            initial=initial,
            write_hook=_write_control,
        )
        msrs.define(
            MSR.TPMI_UFS_BASE + 2 * index + 1,
            writable=False,
            read_hook=_read_status,
        )


def build_uncore(config: UncoreConfig) -> UncoreDriver:
    """The uncore driver for one socket: legacy single-domain, or TPMI.

    ``die_count == 1`` (the default) returns the plain
    :class:`UncoreDriver` — the pre-TPMI code path, untouched — so the
    multi-die surface can never perturb legacy runs.
    """
    if config.die_count > 1:
        return TpmiUncore(config)
    return UncoreDriver(config)

