"""The composed socket model: clocks, power, RAPL, counters.

:class:`SimulatedProcessor` wires one socket's subsystems together and
advances them in lockstep.  Each :meth:`step` executes a slice of the
current phase:

1. the RAPL firmware converts its windowed power averages into an
   instantaneous budget and clamps the core frequency so predicted
   demand fits (using last step's activity — firmware always acts on
   stale telemetry);
2. the hardware uncore governor moves inside its programmed window
   (unless DUF pinned it);
3. the roofline model turns the resolved clocks into achieved FLOPS/s
   and bytes/s, and those into package and DRAM power;
4. energy counters, APERF/MPERF and the retired-FLOP/byte counters
   advance — everything the PAPI layer exposes upward.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..config import SocketConfig
from ..errors import SimulationError
from .cstates import CStateModel
from .dvfs import PStateDriver
from .epb import EPBModel
from .memory import MemorySystem
from .msr import MSRFile
from .perf import ExecutionRates, PhaseExecutionModel
from .power import PackagePowerModel, PowerBreakdown
from .rapl import RAPLPackage
from .thermal import ThermalModel
from .uncore import TpmiUncore, UncoreDriver, build_uncore

__all__ = ["PhaseWork", "ProcessorState", "SimulatedProcessor"]


@dataclass(frozen=True)
class PhaseWork:
    """Character of the phase currently executing on this socket.

    Volumes are the *whole phase's* FLOP/byte totals; the execution
    model only uses their ratio plus ``fpc`` to derive rates, and the
    engine tracks completion separately as a progress fraction.
    """

    flops: float
    bytes: float
    fpc: float
    latency_sensitivity: float = 0.0
    uncore_sensitivity: float = 0.0
    #: Extra DRAM traffic factor when the uncore runs below the
    #: bandwidth-saturation point (prefetcher mistraining); affects DRAM
    #: power but not the counters the controller reads.
    overfetch: float = 0.0
    #: Core power multiplier (> 1 for high-current bursts such as wide
    #: vector sections): raises demand without changing the FLOP rate,
    #: so under a cap RAPL throttles while the 200 ms counters barely
    #: move — the paper's LAMMPS aliasing.
    power_boost: float = 1.0
    #: Fraction of wall time the cores are idle (I/O or barrier slack);
    #: consulted only by the optional C-state model.
    idleness: float = 0.0


@dataclass(frozen=True)
class ProcessorState:
    """Snapshot of the socket after a step (one trace sample)."""

    time_s: float
    core_freq_hz: float
    uncore_freq_hz: float
    package: PowerBreakdown
    dram_power_w: float
    flops_rate: float
    bytes_rate: float
    bound: str
    #: Package temperature, °C (``None`` when thermals are disabled).
    temperature_c: float | None = None


@dataclass
class SimulatedProcessor:
    """One socket of the simulated machine."""

    config: SocketConfig
    socket_id: int = 0
    msrs: MSRFile = field(init=False)
    dvfs: PStateDriver = field(init=False)
    uncore: UncoreDriver = field(init=False)
    rapl: RAPLPackage = field(init=False)
    power_model: PackagePowerModel = field(init=False)
    memory: MemorySystem = field(init=False)
    perf: PhaseExecutionModel = field(init=False)
    thermal: ThermalModel | None = field(init=False, default=None)
    cstates: CStateModel | None = field(init=False, default=None)
    epb_model: EPBModel | None = field(init=False, default=None)

    #: Cumulative retired floating-point operations.
    flops_retired: float = 0.0
    #: Cumulative DRAM bytes transferred.
    bytes_transferred: float = 0.0
    #: Simulated time on this socket.
    now_s: float = 0.0

    _prev_activity: float = 0.0
    _prev_traffic: float = 0.0
    _last_state: ProcessorState | None = None

    def __post_init__(self) -> None:
        self.config.validate()
        self.msrs = MSRFile()
        self.dvfs = PStateDriver(self.config.core)
        self.uncore = build_uncore(self.config.uncore)
        self.rapl = RAPLPackage(self.config.rapl)
        self.power_model = PackagePowerModel(
            self.config.core, self.config.uncore, self.config.power
        )
        self.memory = MemorySystem(
            self.config.memory, self.config.core, self.config.uncore
        )
        self.perf = PhaseExecutionModel(self.config.core, self.memory)
        self.dvfs.attach_msrs(self.msrs)
        self.uncore.attach_msrs(self.msrs)
        self.rapl.attach_msrs(self.msrs)
        if self.config.thermal is not None:
            self.thermal = ThermalModel(self.config.thermal)
            self.thermal.attach_msrs(self.msrs)
        if self.config.cstates is not None:
            self.cstates = CStateModel(self.config.cstates, self.config.core)
            self.cstates.attach_msrs(self.msrs)
        if self.config.epb is not None:
            self.epb_model = EPBModel(self.config.epb)
            self.epb_model.attach_msrs(self.msrs)
            # EPP pulls the effective uncore window ceiling toward the
            # floor; the hook stays live as hints change mid-run.
            self.uncore.epp_bias = self.epb_model.uncore_hi_scale

    # -- main advance ---------------------------------------------------------------

    def step(self, dt_s: float, work: PhaseWork | None) -> float:
        """Advance ``dt_s`` executing ``work`` (or idling).

        Returns the fraction of the phase completed during this step
        (0.0 when idle).
        """
        if dt_s <= 0:
            raise SimulationError("step: non-positive dt")

        # 1. RAPL firmware: budget -> core frequency clamp.  The clamp
        # uses last step's telemetry but the current demand multiplier:
        # current spikes trip the voltage-regulator feedback within
        # microseconds, faster than one engine step.
        boost = work.power_boost if work is not None else 1.0
        budget = self.rapl.allowed_power()
        multi_die = isinstance(self.uncore, TpmiUncore)
        clamp = self.power_model.max_core_freq_under(
            budget,
            self.uncore.frequency_hz,
            self._prev_activity,
            self._prev_traffic,
            core_boost=boost,
            uncore_dies=(
                self.uncore.die_loads(self._prev_traffic) if multi_die else None
            ),
        )
        self.dvfs.set_rapl_clamp(clamp)

        # 2. Hardware uncore governor moves inside its window.
        self.uncore.advance(self._prev_traffic, self._prev_activity)

        core_hz = self.dvfs.effective_freq()
        # AVX frequency license (opt-in): wide-vector phases run under
        # the derated all-core turbo regardless of the governor.
        if (
            work is not None
            and work.fpc >= self.config.core.avx_license_fpc
        ):
            core_hz = min(core_hz, self.config.core.avx_max_freq_hz)
        # PROCHOT: the thermal safety net beneath RAPL.
        if self.thermal is not None and self.thermal.prochot:
            core_hz = min(core_hz, self.dvfs.snap(self.thermal.freq_clamp_hz()))
        uncore_hz = self.uncore.frequency_hz

        # 3. Execute the phase slice.
        if work is not None and (work.flops > 0 or work.bytes > 0):
            rates = self.perf.instantaneous(
                work.flops,
                work.bytes,
                work.fpc,
                core_hz,
                uncore_hz,
                work.latency_sensitivity,
                work.uncore_sensitivity,
            )
            progress = rates.progress_rate * dt_s
        else:
            rates = ExecutionRates(
                flops_rate=0.0,
                bytes_rate=0.0,
                core_activity=0.0,
                traffic_util=0.0,
                progress_rate=0.0,
                bound="idle",
            )
            progress = 0.0

        # 3b. C-states (opt-in): idle residency cuts the core idle-power
        # term and wakeup exit latencies shave the achieved rates.  Only
        # in-phase idleness counts: a socket with no work spins at the
        # barrier in C0 (the paper testbed's polling wait), so idle-free
        # work stays bit-for-bit the legacy path.
        core_idle_scale = 1.0
        if self.cstates is not None and work is not None:
            idleness = work.idleness
            sensitivity = work.latency_sensitivity
            cslice = self.cstates.resolve(idleness, sensitivity)
            self.cstates.advance(dt_s, cslice)
            core_idle_scale = cslice.idle_scale
            if cslice.perf_scale < 1.0 and rates.progress_rate > 0.0:
                rates = replace(
                    rates,
                    flops_rate=rates.flops_rate * cslice.perf_scale,
                    bytes_rate=rates.bytes_rate * cslice.perf_scale,
                    progress_rate=rates.progress_rate * cslice.perf_scale,
                )
                progress = rates.progress_rate * dt_s

        # 4. Power, energy, counters.
        pkg = self.power_model.package_power(
            core_hz,
            uncore_hz,
            rates.core_activity,
            rates.traffic_util,
            core_boost=boost,
            core_idle_scale=core_idle_scale,
            uncore_dies=(
                self.uncore.die_loads(rates.traffic_util) if multi_die else None
            ),
        )
        dram_traffic = rates.bytes_rate
        if work is not None and work.overfetch > 0.0:
            sat_hz = self.memory.saturation_uncore_hz()
            if uncore_hz < sat_hz:
                dram_traffic *= 1.0 + work.overfetch * (1.0 - uncore_hz / sat_hz)
        dram_w = self.memory.dram_power(dram_traffic)
        self.rapl.step(dt_s, pkg.total_w, dram_w)
        if self.thermal is not None:
            self.thermal.step(dt_s, pkg.total_w)
        self.dvfs.advance(dt_s)
        self.flops_retired += rates.flops_rate * dt_s
        self.bytes_transferred += rates.bytes_rate * dt_s
        self.now_s += dt_s
        self._prev_activity = rates.core_activity
        self._prev_traffic = rates.traffic_util
        self._last_state = ProcessorState(
            time_s=self.now_s,
            core_freq_hz=core_hz,
            uncore_freq_hz=uncore_hz,
            package=pkg,
            dram_power_w=dram_w,
            flops_rate=rates.flops_rate,
            bytes_rate=rates.bytes_rate,
            bound=rates.bound,
            temperature_c=(
                self.thermal.temperature_c if self.thermal is not None else None
            ),
        )
        return min(progress, 1.0)

    def preview_progress_rate(self, work: PhaseWork) -> float:
        """Estimate the phase progress rate at the *current* clocks.

        Used by the engine to split a step at a phase boundary.  The
        estimate ignores the intra-step clamp/governor updates, so the
        actual :meth:`step` progress can differ slightly; callers must
        treat it as a hint, not a guarantee.
        """
        if work.flops <= 0 and work.bytes <= 0:
            return 0.0
        core_hz = self.dvfs.effective_freq()
        if work.fpc >= self.config.core.avx_license_fpc:
            core_hz = min(core_hz, self.config.core.avx_max_freq_hz)
        rates = self.perf.instantaneous(
            work.flops,
            work.bytes,
            work.fpc,
            core_hz,
            self.uncore.frequency_hz,
            work.latency_sensitivity,
            work.uncore_sensitivity,
        )
        return rates.progress_rate

    # -- views ------------------------------------------------------------------------

    @property
    def state(self) -> ProcessorState:
        """Snapshot taken at the end of the most recent step."""
        if self._last_state is None:
            raise SimulationError("processor has not stepped yet")
        return self._last_state

    @property
    def package_energy_j(self) -> float:
        return self.rapl.package.total_energy_j

    @property
    def dram_energy_j(self) -> float:
        return self.rapl.dram.total_energy_j

    def default_power_budget_w(self) -> float:
        """The socket's default long-term budget (Fig. 1's denominator)."""
        return self.config.rapl.pl1_default_w
