"""RAPL (Running Average Power Limit) model: limits, counters, firmware.

RAPL exposes two package-domain constraints: a long-term limit PL1 that
the running average of power must respect over a ~1 s window, and a
short-term limit PL2 that bounds bursts over a ~10 ms window.  The
firmware enforces them with DVFS: every control period it derives the
allowed instantaneous power from the windowed average and clamps the
core frequency so demand fits.

The model reproduces the properties DUFP's cap logic depends on:

* **both constraints are real** — DUFP sets PL1 = PL2 on a decrease and
  re-opens PL2 after a reset once consumption falls below the cap;
* **limit writes latch with a delay** (``actuation_delay_s``), so the
  interval right after a decrease can consume above the new cap — the
  situation the paper handles by resetting the cap;
* **energy counters wrap**: 32-bit registers in units of 2⁻¹⁴ J, read
  exactly like ``MSR_PKG_ENERGY_STATUS``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..config import RAPLConfig
from ..errors import RAPLError
from .msr import (
    MSR,
    MSRFile,
    decode_rapl_window,
    encode_rapl_window,
    get_bits,
    set_bits,
)

__all__ = ["PowerLimit", "RAPLDomain", "RAPLPackage"]


@dataclass
class PowerLimit:
    """One RAPL constraint (PL1 or PL2)."""

    limit_w: float
    window_s: float
    enabled: bool = True
    clamping: bool = True


@dataclass
class RAPLDomain:
    """An energy-metering domain (package or dram)."""

    name: str
    energy_unit_j: float
    counter_bits: int = 32
    _energy_j: float = 0.0

    def accumulate(self, energy_j: float) -> None:
        if energy_j < 0:
            raise RAPLError(f"{self.name}: negative energy increment")
        self._energy_j += energy_j

    @property
    def total_energy_j(self) -> float:
        """Un-wrapped total energy since construction (model-side view)."""
        return self._energy_j

    @property
    def counter(self) -> int:
        """The wrapped register value, in energy units."""
        units = int(self._energy_j / self.energy_unit_j)
        return units % (1 << self.counter_bits)

    def energy_between(self, counter_before: int, counter_after: int) -> float:
        """Joules between two counter reads, handling one wraparound."""
        span = 1 << self.counter_bits
        delta = (counter_after - counter_before) % span
        return delta * self.energy_unit_j


@dataclass
class RAPLPackage:
    """Package-domain RAPL: PL1/PL2 enforcement plus energy metering."""

    cfg: RAPLConfig
    pl1: PowerLimit = field(init=False)
    pl2: PowerLimit = field(init=False)
    package: RAPLDomain = field(init=False)
    dram: RAPLDomain = field(init=False)
    #: Exponential running average of package power per window.
    _avg_pl1_w: float = 0.0
    _avg_pl2_w: float = 0.0
    #: Pending limit write: (time_due_s, pl1, pl2).
    _pending: tuple[float, PowerLimit, PowerLimit] | None = None
    _now_s: float = 0.0
    #: Optional fault hook consulted on every limit write; returns
    #: ``(dropped, extra_delay_s)``.  A dropped write is silently lost
    #: — the firmware never latches the new limits, reproducing the
    #: paper's "the cap did not latch in time" failure — and a positive
    #: extra delay stretches this write's actuation latency.  ``None``
    #: (the default) is the fault-free fast path.
    latch_fault: Callable[[], tuple[bool, float]] | None = None

    def __post_init__(self) -> None:
        self.cfg.validate()
        self.pl1 = PowerLimit(self.cfg.pl1_default_w, self.cfg.pl1_window_s)
        self.pl2 = PowerLimit(self.cfg.pl2_default_w, self.cfg.pl2_window_s)
        self.package = RAPLDomain(
            "package", self.cfg.energy_unit_j, self.cfg.counter_bits
        )
        self.dram = RAPLDomain("dram", self.cfg.energy_unit_j, self.cfg.counter_bits)
        self._avg_pl1_w = self.cfg.pl1_default_w * 0.8
        self._avg_pl2_w = self.cfg.pl1_default_w * 0.8

    # -- limit programming -------------------------------------------------------

    def set_limits(
        self,
        pl1_w: float,
        pl2_w: float,
        *,
        pl1_window_s: float | None = None,
        pl2_window_s: float | None = None,
    ) -> None:
        """Program both constraints; they latch after the actuation delay."""
        for w in (pl1_w, pl2_w):
            if not self.cfg.min_limit_w <= w <= 10 * self.cfg.pl2_default_w:
                raise RAPLError(f"power limit {w!r} W outside accepted range")
        if pl1_w > pl2_w:
            raise RAPLError(f"PL1 ({pl1_w} W) must not exceed PL2 ({pl2_w} W)")
        extra_delay_s = 0.0
        if self.latch_fault is not None:
            dropped, extra_delay_s = self.latch_fault()
            if dropped:
                return
        new_pl1 = PowerLimit(pl1_w, pl1_window_s or self.pl1.window_s)
        new_pl2 = PowerLimit(pl2_w, pl2_window_s or self.pl2.window_s)
        self._pending = (
            self._now_s + self.cfg.actuation_delay_s + extra_delay_s,
            new_pl1,
            new_pl2,
        )

    def reset_limits(self) -> None:
        """Restore both constraints to their architecture defaults."""
        self.set_limits(
            self.cfg.pl1_default_w,
            self.cfg.pl2_default_w,
            pl1_window_s=self.cfg.pl1_window_s,
            pl2_window_s=self.cfg.pl2_window_s,
        )

    @property
    def effective_pl1_w(self) -> float:
        return self.pl1.limit_w

    @property
    def effective_pl2_w(self) -> float:
        return self.pl2.limit_w

    # -- firmware step -------------------------------------------------------------

    def allowed_power(self) -> float:
        """Instantaneous power budget derived from the windowed averages.

        While the long-window average sits below PL1 the package may
        burst up to PL2; once it reaches PL1 the budget converges to
        PL1.  The ``2×`` headroom gain reproduces the observed RAPL
        behaviour of allowing a short overshoot proportional to the
        accumulated deficit.
        """
        if not self.pl1.enabled and not self.pl2.enabled:
            return math.inf
        budget = math.inf
        if self.pl1.enabled:
            headroom = self.pl1.limit_w - self._avg_pl1_w
            budget = self.pl1.limit_w + 2.0 * max(headroom, 0.0)
            if headroom < 0.0:
                # Average above the limit: pull below PL1 to recover.
                budget = self.pl1.limit_w + 2.0 * headroom
                budget = max(budget, 0.0)
        if self.pl2.enabled:
            budget = min(budget, self.pl2.limit_w)
        return budget

    def step(self, dt_s: float, package_power_w: float, dram_power_w: float) -> None:
        """Advance time: latch pending limits, meter energy, update averages."""
        if dt_s <= 0:
            raise RAPLError("step: non-positive dt")
        if package_power_w < 0 or dram_power_w < 0:
            raise RAPLError("step: negative power")
        self._now_s += dt_s
        if self._pending is not None and self._now_s >= self._pending[0]:
            _, self.pl1, self.pl2 = self._pending
            self._pending = None
        self.package.accumulate(package_power_w * dt_s)
        self.dram.accumulate(dram_power_w * dt_s)
        a1 = 1.0 - math.exp(-dt_s / self.pl1.window_s)
        a2 = 1.0 - math.exp(-dt_s / self.pl2.window_s)
        self._avg_pl1_w += a1 * (package_power_w - self._avg_pl1_w)
        self._avg_pl2_w += a2 * (package_power_w - self._avg_pl2_w)

    # -- MSR wiring ------------------------------------------------------------------

    def attach_msrs(self, msrs: MSRFile) -> None:
        """Expose 0x606/0x610/0x611/0x619 with architectural layouts."""
        pu = int(round(-math.log2(self.cfg.power_unit_w)))
        esu = int(round(-math.log2(self.cfg.energy_unit_j)))
        tu = 10  # 2**-10 s ≈ 976 µs, the Skylake default time unit
        unit_reg = set_bits(set_bits(set_bits(0, 3, 0, pu), 12, 8, esu), 19, 16, tu)
        time_unit_s = 2.0**-tu

        def _encode_limit_reg() -> int:
            v = 0
            v = set_bits(v, 14, 0, int(round(self.pl1.limit_w / self.cfg.power_unit_w)))
            v = set_bits(v, 15, 15, int(self.pl1.enabled))
            v = set_bits(v, 16, 16, int(self.pl1.clamping))
            v = set_bits(v, 23, 17, encode_rapl_window(self.pl1.window_s, time_unit_s))
            v = set_bits(v, 46, 32, int(round(self.pl2.limit_w / self.cfg.power_unit_w)))
            v = set_bits(v, 47, 47, int(self.pl2.enabled))
            v = set_bits(v, 48, 48, int(self.pl2.clamping))
            v = set_bits(v, 55, 49, encode_rapl_window(self.pl2.window_s, time_unit_s))
            return v

        def _write_limit_reg(value: int) -> None:
            pl1_w = get_bits(value, 14, 0) * self.cfg.power_unit_w
            pl2_w = get_bits(value, 46, 32) * self.cfg.power_unit_w
            pl1_win = decode_rapl_window(get_bits(value, 23, 17), time_unit_s)
            pl2_win = decode_rapl_window(get_bits(value, 55, 49), time_unit_s)
            self.set_limits(
                pl1_w, pl2_w, pl1_window_s=pl1_win, pl2_window_s=pl2_win
            )

        msrs.define(MSR.MSR_RAPL_POWER_UNIT, initial=unit_reg, writable=False)
        msrs.define(
            MSR.MSR_PKG_POWER_LIMIT,
            initial=_encode_limit_reg(),
            read_hook=_encode_limit_reg,
            write_hook=_write_limit_reg,
        )
        msrs.define(
            MSR.MSR_PKG_ENERGY_STATUS,
            writable=False,
            read_hook=lambda: self.package.counter,
        )
        msrs.define(
            MSR.MSR_DRAM_ENERGY_STATUS,
            writable=False,
            read_hook=lambda: self.dram.counter,
        )
