"""Package thermal model: temperature, TDP and PROCHOT throttling.

The paper's background (§II-B) grounds power capping in thermals: TDP
is "the maximum amount of power that can be dissipated by the processor
cooling systems", and RAPL's default long-term limit equals it.  This
module closes that loop with a first-order thermal RC model:

``dT/dt = (P · R_th − (T − T_amb)) / τ``

so sustained power `P` settles at ``T_amb + P · R_th``.  With the
default constants, running at the 125 W TDP settles around 84 °C —
comfortably below the 96 °C PROCHOT trip — which is exactly the
guarantee TDP encodes.  Power spikes above TDP are absorbed by the
package's thermal mass (τ ≈ 8 s), mirroring why RAPL's short-term
limit may exceed TDP "for a short time".

If temperature does reach the trip point (undersized cooling, raised
limits), PROCHOT clamps the core frequency until the package cools —
a safety net beneath RAPL, not a control knob.

Readouts use the architectural registers: ``IA32_THERM_STATUS``
(0x19C) exposes the *digital readout* — degrees below the trip point —
and ``MSR_TEMPERATURE_TARGET`` (0x1A2) the trip point itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import ThermalConfig
from ..errors import HardwareError
from .msr import MSRFile, set_bits

__all__ = ["ThermalConfig", "ThermalModel", "MSR_IA32_THERM_STATUS", "MSR_TEMPERATURE_TARGET"]

MSR_IA32_THERM_STATUS = 0x19C
MSR_TEMPERATURE_TARGET = 0x1A2


@dataclass
class ThermalModel:
    """First-order package temperature with PROCHOT."""

    cfg: ThermalConfig
    temperature_c: float = 0.0
    prochot: bool = False

    def __post_init__(self) -> None:
        self.cfg.validate()
        if self.temperature_c == 0.0:
            self.temperature_c = self.cfg.ambient_c

    def step(self, dt_s: float, power_w: float) -> None:
        """Advance the RC model and update the PROCHOT latch."""
        if dt_s <= 0:
            raise HardwareError("step: non-positive dt")
        if power_w < 0:
            raise HardwareError("step: negative power")
        target = self.cfg.steady_state_c(power_w)
        alpha = 1.0 - math.exp(-dt_s / self.cfg.tau_s)
        self.temperature_c += alpha * (target - self.temperature_c)
        if self.temperature_c >= self.cfg.t_prochot_c:
            self.prochot = True
        elif self.temperature_c <= self.cfg.t_prochot_c - self.cfg.hysteresis_c:
            self.prochot = False

    def freq_clamp_hz(self) -> float:
        """The PROCHOT frequency clamp (infinite when not asserted)."""
        return self.cfg.prochot_freq_hz if self.prochot else math.inf

    @property
    def headroom_c(self) -> float:
        """Degrees below the trip point (the digital readout)."""
        return max(self.cfg.t_prochot_c - self.temperature_c, 0.0)

    # -- MSR wiring ------------------------------------------------------------

    def attach_msrs(self, msrs: MSRFile) -> None:
        """Expose IA32_THERM_STATUS / MSR_TEMPERATURE_TARGET."""

        def _read_status() -> int:
            v = set_bits(0, 0, 0, int(self.prochot))
            # Digital readout: degrees below the trip, bits 22:16.
            readout = min(int(self.headroom_c), 0x7F)
            v = set_bits(v, 22, 16, readout)
            v = set_bits(v, 31, 31, 1)  # readout valid
            return v

        msrs.define(MSR_IA32_THERM_STATUS, writable=False, read_hook=_read_status)
        msrs.define(
            MSR_TEMPERATURE_TARGET,
            writable=False,
            initial=set_bits(0, 23, 16, int(self.cfg.t_prochot_c)),
        )
