"""Roofline execution model: how fast a phase runs at given clocks.

A phase is a bundle of ``flops`` floating-point operations interleaved
with ``bytes`` of memory traffic.  At core frequency ``f`` and uncore
frequency ``fu`` the phase needs

* compute time ``t_c = flops / (N · fpc · f)`` — ``fpc`` is the phase's
  achieved FLOPs per cycle per core (vectorisation × port pressure);
* memory time ``t_m = bytes / BW(f, fu)`` — the bandwidth roofline from
  :class:`repro.hardware.memory.MemorySystem`, optionally inflated by a
  latency term for pointer-chasing phases where a slower uncore hurts
  beyond the bandwidth cut.

Real cores overlap the two imperfectly, so the phase time is a p-norm
``smooth_max(t_c, t_m)``: equal to the larger term when one dominates,
up to ~12 % above it when they balance.  From the phase time we derive
what the counters will show (FLOPS/s, bytes/s) and what the power model
needs (core activity, traffic utilisation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CoreConfig
from ..units import smooth_max
from .memory import MemorySystem

__all__ = ["ExecutionRates", "PhaseExecutionModel"]


@dataclass(frozen=True)
class ExecutionRates:
    """Instantaneous execution state of a phase at fixed clocks."""

    #: Achieved floating-point rate, FLOP/s.
    flops_rate: float
    #: Achieved memory traffic, bytes/s.
    bytes_rate: float
    #: Fraction of core cycles doing work (for the power model).
    core_activity: float
    #: Fraction of peak memory bandwidth in use (for the power model).
    traffic_util: float
    #: Inverse phase time: fraction of the phase completed per second.
    progress_rate: float
    #: "compute" | "memory" | "balanced" — which roof binds.
    bound: str


@dataclass
class PhaseExecutionModel:
    """Maps (phase character, clocks) to achieved rates."""

    core_cfg: CoreConfig
    memory: MemorySystem
    #: p-norm sharpness for the compute/memory overlap.  Calibrated so
    #: CG's slowdown under whole-run caps tracks the paper's Fig. 1a
    #: (7 %/12 % at 110/100 W) with a gradual onset rather than a knee.
    overlap_sharpness: float = 3.5
    #: Two rooflines within this ratio of each other count as balanced.
    balance_band: float = 1.15

    def phase_time(
        self,
        flops: float,
        bytes_: float,
        fpc: float,
        core_hz: float,
        uncore_hz: float,
        latency_sensitivity: float = 0.0,
        uncore_sensitivity: float = 0.0,
    ) -> float:
        """Wall time to execute the phase at the given clocks, seconds."""
        t_c, t_m = self._roof_times(
            flops,
            bytes_,
            fpc,
            core_hz,
            uncore_hz,
            latency_sensitivity,
            uncore_sensitivity,
        )
        return smooth_max(t_c, t_m, self.overlap_sharpness)

    def instantaneous(
        self,
        flops: float,
        bytes_: float,
        fpc: float,
        core_hz: float,
        uncore_hz: float,
        latency_sensitivity: float = 0.0,
        uncore_sensitivity: float = 0.0,
    ) -> ExecutionRates:
        """Rates and power-model inputs while the phase executes."""
        t_c, t_m = self._roof_times(
            flops,
            bytes_,
            fpc,
            core_hz,
            uncore_hz,
            latency_sensitivity,
            uncore_sensitivity,
        )
        t = smooth_max(t_c, t_m, self.overlap_sharpness)
        if t <= 0.0:
            raise ValueError("phase with no work: flops and bytes both zero")

        if t_m == 0.0 or (t_c > 0 and t_c / max(t_m, 1e-300) > self.balance_band):
            bound = "compute"
        elif t_c == 0.0 or t_m / max(t_c, 1e-300) > self.balance_band:
            bound = "memory"
        else:
            bound = "balanced"

        bytes_rate = bytes_ / t
        return ExecutionRates(
            flops_rate=flops / t,
            bytes_rate=bytes_rate,
            # Cores retire for the compute-time share of the phase; a
            # floor reflects that stalled cores still clock and issue.
            core_activity=min(t_c / t, 1.0),
            traffic_util=self.memory.traffic_utilisation(bytes_rate),
            progress_rate=1.0 / t,
            bound=bound,
        )

    # -- internals --------------------------------------------------------------

    def _roof_times(
        self,
        flops: float,
        bytes_: float,
        fpc: float,
        core_hz: float,
        uncore_hz: float,
        latency_sensitivity: float,
        uncore_sensitivity: float,
    ) -> tuple[float, float]:
        if flops < 0 or bytes_ < 0:
            raise ValueError("phase volumes must be non-negative")
        if fpc <= 0:
            raise ValueError("flops-per-cycle must be positive")
        if core_hz <= 0 or uncore_hz <= 0:
            raise ValueError("clock frequencies must be positive")
        if latency_sensitivity < 0 or uncore_sensitivity < 0:
            raise ValueError("sensitivities must be non-negative")

        peak_flops = self.core_cfg.count * fpc * core_hz
        t_c = flops / peak_flops
        if uncore_sensitivity > 0.0 and flops > 0.0:
            # LLC-fed compute (DGEMM tiles, stencil sweeps): the kernel's
            # working set streams through the shared cache, so a slower
            # uncore starves the pipelines even when DRAM traffic is low.
            ratio = self.memory.uncore_cfg.max_freq_hz / uncore_hz
            t_c *= 1.0 + uncore_sensitivity * (ratio - 1.0)

        if bytes_ == 0.0:
            return t_c, 0.0

        bw = self.memory.achievable_bandwidth(core_hz, uncore_hz)
        t_m = bytes_ / bw
        if latency_sensitivity > 0.0:
            # Pointer-chasing penalty: each miss waits on the uncore, so
            # time inflates with the uncore slowdown ratio.
            ratio = self.memory.uncore_cfg.max_freq_hz / uncore_hz
            t_m *= 1.0 + latency_sensitivity * (ratio - 1.0)
        return t_c, t_m
