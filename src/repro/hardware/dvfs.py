"""Core DVFS: P-states, governors and the frequency clamp chain.

The simulated socket scales all of its cores together (package-scoped
DVFS), which matches the paper's observation that "all cores have
equivalent behaviors" under both DUF and DUFP.  The effective core
frequency is the minimum of three inputs:

* the governor's request (``performance`` pins it to the turbo maximum,
  as on the testbed, which runs intel_pstate/performance);
* the RAPL clamp, updated by the power limiter each step;
* the P-state ceiling written through ``IA32_PERF_CTL``.

``IA32_APERF``/``IA32_MPERF`` accumulate so that measured average
frequency (Fig. 5 of the paper) can be derived exactly the way Linux
derives it: ``f_avg = base_freq · ΔAPERF / ΔMPERF``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import CoreConfig
from ..errors import FrequencyError
from .msr import MSR, MSRFile, get_bits, set_bits

__all__ = ["PStateDriver", "PerformanceGovernor", "PowersaveGovernor"]

#: One P-state ratio unit corresponds to 100 MHz on Intel parts.
RATIO_HZ = 100e6


class PerformanceGovernor:
    """The ``performance`` cpufreq governor: always request the maximum."""

    name = "performance"

    def requested_freq(self, config: CoreConfig) -> float:
        return config.max_freq_hz


class PowersaveGovernor:
    """The ``powersave`` governor floor: always request the minimum.

    Not used by the experiments (the testbed runs ``performance``) but
    kept for completeness and for tests that need a non-trivial request.
    """

    name = "powersave"

    def requested_freq(self, config: CoreConfig) -> float:
        return config.min_freq_hz


@dataclass
class PStateDriver:
    """Core clock domain of one socket."""

    config: CoreConfig
    governor: PerformanceGovernor | PowersaveGovernor = field(
        default_factory=PerformanceGovernor
    )
    #: Ceiling written via IA32_PERF_CTL (Hz); defaults to the turbo max.
    perf_ctl_ceiling_hz: float = 0.0
    #: Clamp imposed by the RAPL limiter (Hz).
    rapl_clamp_hz: float = 0.0
    _aperf_cycles: float = 0.0
    _mperf_cycles: float = 0.0

    def __post_init__(self) -> None:
        self.config.validate()
        if self.perf_ctl_ceiling_hz == 0.0:
            self.perf_ctl_ceiling_hz = self.config.max_freq_hz
        if self.rapl_clamp_hz == 0.0:
            self.rapl_clamp_hz = self.config.max_freq_hz

    # -- frequency resolution ------------------------------------------------

    def available_pstates(self) -> tuple[float, ...]:
        """All selectable core frequencies (Hz), ascending."""
        cfg = self.config
        n = int(round((cfg.max_freq_hz - cfg.min_freq_hz) / cfg.step_hz))
        return tuple(cfg.min_freq_hz + i * cfg.step_hz for i in range(n + 1))

    def snap(self, freq_hz: float) -> float:
        """Snap an arbitrary frequency onto the P-state grid (floor)."""
        cfg = self.config
        if freq_hz <= cfg.min_freq_hz:
            return cfg.min_freq_hz
        if freq_hz >= cfg.max_freq_hz:
            return cfg.max_freq_hz
        steps = int((freq_hz - cfg.min_freq_hz) / cfg.step_hz)
        return cfg.min_freq_hz + steps * cfg.step_hz

    def effective_freq(self) -> float:
        """Resolve the current core frequency (Hz)."""
        req = self.governor.requested_freq(self.config)
        return self.snap(min(req, self.perf_ctl_ceiling_hz, self.rapl_clamp_hz))

    def set_rapl_clamp(self, freq_hz: float) -> None:
        """RAPL limiter entry point; clamped to the P-state range."""
        cfg = self.config
        self.rapl_clamp_hz = min(max(freq_hz, cfg.min_freq_hz), cfg.max_freq_hz)

    def clear_rapl_clamp(self) -> None:
        self.rapl_clamp_hz = self.config.max_freq_hz

    # -- APERF/MPERF ---------------------------------------------------------

    def advance(self, dt_s: float) -> None:
        """Accumulate APERF (actual) and MPERF (reference) cycles."""
        if dt_s < 0:
            raise FrequencyError("advance: negative time step")
        self._aperf_cycles += self.effective_freq() * dt_s
        self._mperf_cycles += self.config.base_freq_hz * dt_s

    @property
    def aperf(self) -> int:
        return int(self._aperf_cycles)

    @property
    def mperf(self) -> int:
        return int(self._mperf_cycles)

    def measured_freq(self, aperf_delta: int, mperf_delta: int) -> float:
        """Average frequency over an interval from counter deltas (Hz)."""
        if mperf_delta <= 0:
            raise FrequencyError("measured_freq: non-positive MPERF delta")
        return self.config.base_freq_hz * aperf_delta / mperf_delta

    # -- MSR wiring ----------------------------------------------------------

    def attach_msrs(self, msrs: MSRFile) -> None:
        """Expose IA32_PERF_CTL/STATUS and APERF/MPERF on ``msrs``."""
        max_ratio = int(round(self.config.max_freq_hz / RATIO_HZ))

        def _write_perf_ctl(value: int) -> None:
            ratio = get_bits(value, 15, 8)
            if ratio == 0:
                raise FrequencyError("IA32_PERF_CTL: zero ratio")
            self.perf_ctl_ceiling_hz = min(
                ratio * RATIO_HZ, self.config.max_freq_hz
            )

        def _read_perf_status() -> int:
            ratio = int(round(self.effective_freq() / RATIO_HZ))
            return set_bits(0, 15, 8, ratio)

        msrs.define(
            MSR.IA32_PERF_CTL,
            initial=set_bits(0, 15, 8, max_ratio),
            write_hook=_write_perf_ctl,
        )
        msrs.define(MSR.IA32_PERF_STATUS, writable=False, read_hook=_read_perf_status)
        msrs.define(MSR.IA32_APERF, writable=False, read_hook=lambda: self.aperf)
        msrs.define(MSR.IA32_MPERF, writable=False, read_hook=lambda: self.mperf)
