"""Energy-performance bias / HWP preference model (opt-in).

Real Intel parts expose two layered energy-performance hints, mapped by
pepc's ``EPB`` and ``EPP`` modules:

* ``IA32_ENERGY_PERF_BIAS`` (0x1B0) — the legacy 4-bit package knob
  (0 = performance, 15 = power);
* the ``energy_performance_preference`` byte in ``IA32_HWP_REQUEST``
  (0x774, bits 31:24; 0 = performance, 255 = power).

Firmware folds the hints into its operating-point choices: a
power-leaning preference shrinks the uncore frequency ceiling and pulls
governor frequency targets down.  :class:`EPBModel` reproduces both
registers (with a write-latch fault hook on the HWP request — EPP
writes on real parts are mediated by firmware and occasionally do not
stick) and exposes the bias factors the uncore driver and the
``powersave`` governor baseline consume.

The model only exists when :class:`~repro.config.SocketConfig` carries
an :class:`~repro.config.EPBConfig`; the default ``None`` leaves the
MSR file and every operating-point decision bit-for-bit unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..config import EPBConfig
from ..errors import HardwareError
from .msr import MSR, MSRFile, get_bits, set_bits

__all__ = ["EPBModel", "EPP_PREFERENCE_NAMES"]

#: Sysfs-style preference names for the common EPP anchor values, as
#: ``/sys/devices/system/cpu/cpufreq/policy*/energy_performance_preference``
#: reports them.
EPP_PREFERENCE_NAMES: dict[int, str] = {
    0: "performance",
    64: "balance_performance",
    128: "balance_power",
    255: "power",
}


@dataclass
class EPBModel:
    """EPB/EPP hint registers and the operating-point biases they drive."""

    config: EPBConfig
    epb: int = field(init=False)
    epp: int = field(init=False)
    #: Consulted on every HWP-request write when set; ``True`` means the
    #: firmware mediator dropped the write (the register keeps its old
    #: value).  Wired to the fault injector by the engine.
    write_latch_fault: Callable[[], bool] | None = None

    def __post_init__(self) -> None:
        self.config.validate()
        self.epb = self.config.epb
        self.epp = self.config.epp

    # -- hint setters ---------------------------------------------------------

    def set_epb(self, value: int) -> None:
        if not 0 <= value <= 15:
            raise HardwareError(f"EPB {value!r} outside [0, 15]")
        self.epb = int(value)

    def set_epp(self, value: int) -> bool:
        """Request a new EPP; returns False if the firmware dropped it."""
        if not 0 <= value <= 255:
            raise HardwareError(f"EPP {value!r} outside [0, 255]")
        if self.write_latch_fault is not None and self.write_latch_fault():
            return False
        self.epp = int(value)
        return True

    # -- bias factors ---------------------------------------------------------

    @property
    def preference(self) -> float:
        """Blended energy preference in [0, 1] (0 = performance)."""
        return (self.epp / 255.0 + self.epb / 15.0) / 2.0

    def uncore_hi_scale(self) -> float:
        """Factor shrinking the uncore window ceiling toward its floor.

        1.0 leaves the window untouched; 0.0 collapses it onto the
        floor.  Linear in the blended preference, scaled by the
        configured strength.
        """
        return 1.0 - self.config.uncore_bias_strength * self.preference

    def dvfs_preference(self) -> float:
        """Energy preference as governors consume it, in [0, 1]."""
        return self.config.dvfs_bias_strength * self.preference

    # -- MSR wiring -----------------------------------------------------------

    def attach_msrs(self, msrs: MSRFile) -> None:
        """Expose IA32_ENERGY_PERF_BIAS and IA32_HWP_REQUEST."""

        def _write_epb(value: int) -> None:
            self.set_epb(get_bits(value, 3, 0))

        def _write_hwp_request(value: int) -> None:
            self.set_epp(get_bits(value, 31, 24))

        def _read_hwp_request() -> int:
            return set_bits(0, 31, 24, self.epp)

        msrs.define(
            MSR.IA32_ENERGY_PERF_BIAS,
            initial=self.epb,
            write_hook=_write_epb,
        )
        msrs.define(
            MSR.IA32_HWP_REQUEST,
            initial=set_bits(0, 31, 24, self.epp),
            write_hook=_write_hwp_request,
            read_hook=_read_hwp_request,
        )
