"""Simulated model-specific registers (MSRs) with real bit layouts.

DUF drives the uncore through ``MSR_UNCORE_RATIO_LIMIT`` (0x620) and the
RAPL machinery lives behind 0x606/0x610/0x611/0x619.  This module
reproduces those registers bit-for-bit so the controller code exercises
the same encode/decode paths an on-metal implementation would: ratios in
100 MHz units, power limits in 1/8 W units, energy counters in
2⁻¹⁴ J units wrapping at 32 bits, and the RAPL ``2^Y·(1+Z/4)``
time-window float format.

The :class:`MSRFile` is a per-socket register store.  Devices (the RAPL
model, the P-state driver, …) attach read/write hooks so that register
traffic reaches the behavioural models, exactly like a kernel driver
sitting behind ``/dev/cpu/*/msr``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import MSRError, MSRPermissionError

__all__ = [
    "MSR",
    "MSRFile",
    "get_bits",
    "set_bits",
    "encode_rapl_window",
    "decode_rapl_window",
]

# ---------------------------------------------------------------------------
# Architectural addresses (Intel SDM vol. 4, Skylake-SP)
# ---------------------------------------------------------------------------


class MSR:
    """Well-known MSR addresses used by the tool stack."""

    IA32_MPERF = 0xE7
    IA32_APERF = 0xE8
    IA32_PERF_STATUS = 0x198
    IA32_PERF_CTL = 0x199
    IA32_ENERGY_PERF_BIAS = 0x1B0
    #: Package C-state residency counters (Skylake-SP layout).
    MSR_PKG_C2_RESIDENCY = 0x60D
    MSR_PKG_C6_RESIDENCY = 0x3F9
    MSR_RAPL_POWER_UNIT = 0x606
    MSR_PKG_POWER_LIMIT = 0x610
    MSR_PKG_ENERGY_STATUS = 0x611
    MSR_DRAM_ENERGY_STATUS = 0x619
    MSR_UNCORE_RATIO_LIMIT = 0x620
    MSR_UNCORE_PERF_STATUS = 0x621
    IA32_HWP_REQUEST = 0x774
    #: Synthetic TPMI uncore-frequency-scaling register block: each die
    #: *i* gets a control register at ``TPMI_UFS_BASE + 2·i`` (min/max
    #: ratio, same 0x620 field layout) and a status register at
    #: ``TPMI_UFS_BASE + 2·i + 1`` (current ratio).
    TPMI_UFS_BASE = 0x2000


_MASK64 = (1 << 64) - 1


def get_bits(value: int, hi: int, lo: int) -> int:
    """Extract bits ``hi:lo`` (inclusive, SDM convention) of ``value``."""
    if not 0 <= lo <= hi <= 63:
        raise MSRError(f"invalid bit range {hi}:{lo}")
    return (value >> lo) & ((1 << (hi - lo + 1)) - 1)


def set_bits(value: int, hi: int, lo: int, bits: int) -> int:
    """Return ``value`` with bits ``hi:lo`` replaced by ``bits``."""
    if not 0 <= lo <= hi <= 63:
        raise MSRError(f"invalid bit range {hi}:{lo}")
    width = hi - lo + 1
    if bits < 0 or bits >= (1 << width):
        raise MSRError(f"field value {bits!r} does not fit in {width} bits")
    mask = ((1 << width) - 1) << lo
    return (value & ~mask & _MASK64) | (bits << lo)


# ---------------------------------------------------------------------------
# RAPL time-window float format: window = 2^Y * (1 + Z/4) * time_unit
# ---------------------------------------------------------------------------


def encode_rapl_window(seconds: float, time_unit_s: float) -> int:
    """Encode a window length into the 7-bit RAPL ``(Y, Z)`` format.

    Returns the 7-bit field (Z in bits 6:5, Y in bits 4:0) whose decoded
    value is the closest representable window not exceeding practical
    rounding error.
    """
    if seconds <= 0 or time_unit_s <= 0:
        raise MSRError("window and time unit must be positive")
    best_field, best_err = 0, float("inf")
    for y in range(32):
        for z in range(4):
            w = (2.0**y) * (1.0 + z / 4.0) * time_unit_s
            err = abs(w - seconds)
            if err < best_err:
                best_err, best_field = err, (z << 5) | y
    return best_field


def decode_rapl_window(field7: int, time_unit_s: float) -> float:
    """Decode the 7-bit RAPL ``(Y, Z)`` window field into seconds."""
    if field7 < 0 or field7 > 0x7F:
        raise MSRError(f"window field {field7!r} exceeds 7 bits")
    y = field7 & 0x1F
    z = (field7 >> 5) & 0x3
    return (2.0**y) * (1.0 + z / 4.0) * time_unit_s


# ---------------------------------------------------------------------------
# Register file
# ---------------------------------------------------------------------------


@dataclass
class _Register:
    value: int = 0
    writable: bool = True
    read_hook: Callable[[], int] | None = None
    write_hook: Callable[[int], None] | None = None


@dataclass
class MSRFile:
    """A per-socket MSR store with device hooks.

    Unknown addresses fault (raise :class:`MSRError`), mirroring the #GP
    a real ``rdmsr`` raises, so typos in controller code fail loudly.
    """

    _regs: dict[int, _Register] = field(default_factory=dict)

    def define(
        self,
        address: int,
        *,
        initial: int = 0,
        writable: bool = True,
        read_hook: Callable[[], int] | None = None,
        write_hook: Callable[[int], None] | None = None,
    ) -> None:
        """Register an MSR at ``address``.

        ``read_hook`` (if set) supplies the value on every read;
        ``write_hook`` observes the raw 64-bit value after it is stored.
        """
        if not 0 <= address <= 0xFFFFFFFF:
            raise MSRError(f"MSR address {address:#x} out of range")
        if address in self._regs:
            raise MSRError(f"MSR {address:#x} already defined")
        if not 0 <= initial <= _MASK64:
            raise MSRError("initial value must fit in 64 bits")
        self._regs[address] = _Register(
            value=initial, writable=writable, read_hook=read_hook, write_hook=write_hook
        )

    def defined(self, address: int) -> bool:
        return address in self._regs

    def read(self, address: int) -> int:
        """``rdmsr``: return the 64-bit register value."""
        reg = self._regs.get(address)
        if reg is None:
            raise MSRError(f"rdmsr {address:#x}: unknown MSR (#GP)")
        if reg.read_hook is not None:
            reg.value = reg.read_hook() & _MASK64
        return reg.value

    def write(self, address: int, value: int) -> None:
        """``wrmsr``: store a 64-bit value, invoking any device hook."""
        reg = self._regs.get(address)
        if reg is None:
            raise MSRError(f"wrmsr {address:#x}: unknown MSR (#GP)")
        if not reg.writable:
            raise MSRPermissionError(f"wrmsr {address:#x}: register is read-only")
        if not 0 <= value <= _MASK64:
            raise MSRError(f"wrmsr {address:#x}: value must fit in 64 bits")
        reg.value = value
        if reg.write_hook is not None:
            reg.write_hook(value)

    def poke(self, address: int, value: int) -> None:
        """Device-side update of a register without firing hooks.

        Behavioural models use this to refresh status registers
        (energy counters, APERF/MPERF) as simulated time advances.
        """
        reg = self._regs.get(address)
        if reg is None:
            raise MSRError(f"poke {address:#x}: unknown MSR")
        if not 0 <= value <= _MASK64:
            raise MSRError(f"poke {address:#x}: value must fit in 64 bits")
        reg.value = value
