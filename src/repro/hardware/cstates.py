"""Core C-state residency model (opt-in; Skylake-SP shaped).

The paper's testbed runs the ``performance`` governor with deep
C-states effectively unused — idle cores stay in C0 burning the
``core_idle_fraction`` share of their dynamic power, which is exactly
what :mod:`repro.hardware.power` models.  Real platforms expose the
cpuidle ladder mapped by pepc's ``CStates`` module: idle cores demote
into C1 (clock gated) or C6 (power gated), each state trading an exit
latency against an idle-power delta, with residency accounted in
package counters (``MSR_PKG_C*_RESIDENCY``).

:class:`CStateModel` reproduces that trade deterministically from the
phase's declared ``idleness``:

* the idle fraction of wall time splits between C1 and C6 — the C6
  share grows with idleness (longer sleeps survive the menu governor's
  demotion heuristics) and shrinks with the phase's latency
  sensitivity;
* the blended residency scales the *idle* term of core dynamic power
  (:meth:`idle_scale` multiplies ``core_idle_fraction``);
* every wakeup pays the residency-weighted exit latency, shaving a few
  tenths of a percent off achieved rates (:meth:`perf_scale`);
* residency accumulates into TSC-unit counters exposed through two
  residency MSRs, with a rollover fault hook for telemetry hardening.

The model only exists when :class:`~repro.config.SocketConfig` carries
a :class:`~repro.config.CStateConfig`; the default ``None`` keeps the
legacy always-C0 path bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..config import CoreConfig, CStateConfig
from ..errors import SimulationError
from .msr import MSR, MSRFile

__all__ = ["CStateSlice", "CStateModel"]

#: Residency counters wrap at 64 bits on real hardware; the rollover
#: fault truncates to 32 bits, the classic firmware-accounting bug.
_COUNTER_WRAP_BITS = 32


@dataclass(frozen=True)
class CStateSlice:
    """Resolved residency split for one step (fractions of wall time)."""

    c0: float
    c1: float
    c6: float
    #: Multiplier on the core-power idle term (1.0 = all-C0 legacy).
    idle_scale: float
    #: Multiplier on achieved rates after wakeup exit latencies (<= 1).
    perf_scale: float


@dataclass
class CStateModel:
    """Per-socket C-state residency accounting and power/perf deltas."""

    config: CStateConfig
    core: CoreConfig
    #: Cumulative residency, seconds of wall time per state.
    c1_residency_s: float = 0.0
    c6_residency_s: float = 0.0
    #: Consulted once per step when set; ``True`` truncates the raw
    #: counters to 32 bits (a firmware rollover the telemetry must
    #: survive).  Wired to the fault injector by the engine.
    rollover_fault: Callable[[], bool] | None = None
    _c1_raw: int = field(init=False, default=0)
    _c6_raw: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.config.validate()
        self.core.validate()

    # -- residency resolution -------------------------------------------------

    def resolve(
        self, idleness: float, latency_sensitivity: float = 0.0
    ) -> CStateSlice:
        """Split ``idleness`` of wall time across the C-state ladder."""
        if not 0.0 <= idleness <= 1.0:
            raise SimulationError(f"idleness {idleness!r} outside [0, 1]")
        cfg = self.config
        demotion = min(max(latency_sensitivity, 0.0), 1.0)
        c6_share = cfg.c6_max_share * idleness * (1.0 - demotion)
        c6 = idleness * c6_share
        c1 = idleness - c6
        idle_power = 0.0
        if idleness > 0.0:
            blended = (
                c1 * cfg.c1_power_fraction + c6 * cfg.c6_power_fraction
            ) / idleness
            idle_power = blended
        idle_scale = (1.0 - idleness) + idleness * idle_power
        # Each wakeup pays the residency-weighted exit latency; the lost
        # time dilates the phase (achieved rates scale down).
        exit_s = 0.0
        if idleness > 0.0:
            exit_s = (
                c1 * cfg.c1_exit_latency_s + c6 * cfg.c6_exit_latency_s
            ) / idleness
        lost = min(cfg.wakeup_rate_hz * idleness * exit_s, 1.0)
        return CStateSlice(
            c0=1.0 - idleness,
            c1=c1,
            c6=c6,
            idle_scale=idle_scale,
            perf_scale=1.0 - lost,
        )

    def advance(self, dt_s: float, slice_: CStateSlice) -> None:
        """Accumulate residency counters for one step."""
        if dt_s <= 0:
            raise SimulationError("CStateModel.advance: non-positive dt")
        self.c1_residency_s += slice_.c1 * dt_s
        self.c6_residency_s += slice_.c6 * dt_s
        self._c1_raw = int(self.c1_residency_s * self.core.base_freq_hz)
        self._c6_raw = int(self.c6_residency_s * self.core.base_freq_hz)
        if self.rollover_fault is not None and self.rollover_fault():
            mask = (1 << _COUNTER_WRAP_BITS) - 1
            self._c1_raw &= mask
            self._c6_raw &= mask

    # -- MSR wiring -----------------------------------------------------------

    def attach_msrs(self, msrs: MSRFile) -> None:
        """Expose the package residency counters (TSC units, read-only)."""
        msrs.define(
            MSR.MSR_PKG_C2_RESIDENCY,
            writable=False,
            read_hook=lambda: self._c1_raw,
        )
        msrs.define(
            MSR.MSR_PKG_C6_RESIDENCY,
            writable=False,
            read_hook=lambda: self._c6_raw,
        )
