"""Package power model for one socket.

``P_pkg = P_static + P_cores(f, activity) + P_uncore(fu, traffic)`` with

* ``P_cores  = N · k_core · V(f)² · f_GHz · (a0 + (1-a0)·activity)``
* ``P_uncore = k_uncore · Vu(fu)² · fu_GHz · (u0 + (1-u0)·traffic)``

``activity`` is the retiring fraction of core cycles (compute-saturated
phases ≈ 1, stall-heavy phases lower but far from zero — a stalled core
still clocks); ``traffic`` is memory-bandwidth utilisation.  The model
is the standard CMOS dynamic-power form the RAPL firmware itself uses
for budgeting, and it is analytically invertible on the P-state grid,
which is how the simulated RAPL limiter picks its frequency clamp.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CoreConfig, PowerModelConfig, UncoreConfig

__all__ = ["PowerBreakdown", "PackagePowerModel"]


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component package power, watts."""

    static_w: float
    core_w: float
    uncore_w: float

    @property
    def total_w(self) -> float:
        return self.static_w + self.core_w + self.uncore_w


@dataclass
class PackagePowerModel:
    """Analytical package power for one socket."""

    core_cfg: CoreConfig
    uncore_cfg: UncoreConfig
    cfg: PowerModelConfig

    def __post_init__(self) -> None:
        self.core_cfg.validate()
        self.uncore_cfg.validate()
        self.cfg.validate()

    # -- forward model ---------------------------------------------------------

    def core_power(
        self, freq_hz: float, activity: float, idle_scale: float = 1.0
    ) -> float:
        """Dynamic power of all cores at ``freq_hz`` with given activity.

        ``idle_scale`` multiplies the activity-independent ``a0`` term;
        the C-state model passes < 1 when idle cores park in C1/C6.
        The default 1.0 is the legacy all-C0 path, bit-for-bit
        (``a0 * 1.0 == a0`` exactly in IEEE 754).
        """
        self._check_unit("activity", activity)
        if not 0.0 <= idle_scale <= 1.0:
            raise ValueError(f"idle_scale must be in [0, 1], got {idle_scale!r}")
        v = self.core_cfg.voltage_at(freq_hz)
        a0 = self.cfg.core_idle_fraction
        scale = a0 * idle_scale + (1.0 - a0) * activity
        return self.core_cfg.count * self.cfg.k_core * v * v * (freq_hz / 1e9) * scale

    def uncore_power(self, uncore_hz: float, traffic: float) -> float:
        """Dynamic power of the uncore at ``uncore_hz`` with given traffic."""
        self._check_unit("traffic", traffic)
        v = self.uncore_cfg.voltage_at(uncore_hz)
        u0 = self.cfg.uncore_idle_fraction
        scale = u0 + (1.0 - u0) * traffic
        return self.cfg.k_uncore * v * v * (uncore_hz / 1e9) * scale

    def uncore_power_dies(
        self, dies: "tuple[tuple[float, float], ...]"
    ) -> float:
        """Uncore power summed over per-die ``(freq_hz, traffic)`` loads.

        Each die owns ``1/N`` of the socket's uncore silicon, so at
        equal per-die frequency and traffic the sum matches the
        single-domain model.  Multi-die configs (``die_count > 1``) are
        the only callers; the legacy path never reaches this method.
        """
        if not dies:
            raise ValueError("uncore_power_dies: no die loads")
        return sum(
            self.uncore_power(freq_hz, traffic) for freq_hz, traffic in dies
        ) / len(dies)

    def package_power(
        self,
        freq_hz: float,
        uncore_hz: float,
        activity: float,
        traffic: float,
        core_boost: float = 1.0,
        core_idle_scale: float = 1.0,
        uncore_dies: "tuple[tuple[float, float], ...] | None" = None,
    ) -> PowerBreakdown:
        """Full package power breakdown.

        ``core_boost`` scales core dynamic power for high-current code
        (wide-vector bursts) without touching the counters.
        ``core_idle_scale`` is the C-state idle-power delta (1.0 = all
        C0); ``uncore_dies`` replaces the single-domain uncore term
        with per-die loads on multi-die parts.
        """
        if core_boost <= 0:
            raise ValueError("core_boost must be positive")
        if uncore_dies is not None:
            uncore_w = self.uncore_power_dies(uncore_dies)
        else:
            uncore_w = self.uncore_power(uncore_hz, traffic)
        return PowerBreakdown(
            static_w=self.cfg.static_w,
            core_w=self.core_power(freq_hz, activity, core_idle_scale)
            * core_boost,
            uncore_w=uncore_w,
        )

    # -- inverse model (RAPL clamp selection) -----------------------------------

    def max_core_freq_under(
        self,
        budget_w: float,
        uncore_hz: float,
        activity: float,
        traffic: float,
        core_boost: float = 1.0,
        uncore_dies: "tuple[tuple[float, float], ...] | None" = None,
    ) -> float:
        """Highest P-state whose package power fits ``budget_w``.

        Returns the minimum P-state when even that exceeds the budget —
        RAPL cannot gate clocks entirely, it can only slow them, which
        is why very low caps overshoot (and why the paper's DUFP resets
        the cap when consumption exceeds it).
        """
        if core_boost <= 0:
            raise ValueError("core_boost must be positive")
        floor = self.core_cfg.min_freq_hz
        if uncore_dies is not None:
            uncore_w = self.uncore_power_dies(uncore_dies)
        else:
            uncore_w = self.uncore_power(uncore_hz, traffic)
        non_core = self.cfg.static_w + uncore_w
        budget_cores = budget_w - non_core
        best = floor
        cfg = self.core_cfg
        n_steps = int(round((cfg.max_freq_hz - cfg.min_freq_hz) / cfg.step_hz))
        for i in range(n_steps, -1, -1):
            f = cfg.min_freq_hz + i * cfg.step_hz
            if self.core_power(f, activity) * core_boost <= budget_cores:
                best = f
                break
        return best

    @staticmethod
    def _check_unit(name: str, value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
