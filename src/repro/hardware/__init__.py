"""Simulated Skylake-SP hardware substrate.

The modules in this package model one socket of the paper's testbed
(Intel Xeon Gold 6130) at the granularity DUFP observes it: per-interval
FLOP/byte/energy counters, core and uncore clock domains, and the RAPL
power limiter.  :class:`repro.hardware.processor.SimulatedProcessor`
composes the pieces; the other modules are usable on their own.
"""

from .topology import Core, Socket, Machine, build_machine
from .msr import MSRFile, MSR
from .dvfs import PStateDriver, PerformanceGovernor
from .uncore import UncoreDriver, DefaultUncoreGovernor
from .rapl import RAPLDomain, RAPLPackage, PowerLimit
from .power import PackagePowerModel, PowerBreakdown
from .thermal import ThermalModel
from .gpu import GPUConfig, GPUKernel, SimulatedGPU, GPUState
from .memory import MemorySystem
from .perf import PhaseExecutionModel, ExecutionRates
from .processor import SimulatedProcessor, ProcessorState

__all__ = [
    "Core",
    "Socket",
    "Machine",
    "build_machine",
    "MSRFile",
    "MSR",
    "PStateDriver",
    "PerformanceGovernor",
    "UncoreDriver",
    "DefaultUncoreGovernor",
    "RAPLDomain",
    "RAPLPackage",
    "PowerLimit",
    "PackagePowerModel",
    "PowerBreakdown",
    "ThermalModel",
    "GPUConfig",
    "GPUKernel",
    "SimulatedGPU",
    "GPUState",
    "MemorySystem",
    "PhaseExecutionModel",
    "ExecutionRates",
    "SimulatedProcessor",
    "ProcessorState",
]
