"""Memory subsystem: achievable bandwidth and DRAM power.

The deliverable bandwidth of one socket is the minimum of three limits:

* the DRAM channels themselves (``peak_bw_bytes``);
* the uncore — mesh and memory controllers move ``bw_per_uncore_hz``
  bytes per uncore cycle, so lowering the uncore frequency below the
  saturation point cuts bandwidth linearly (this is the lever DUF pulls
  and the cost it must watch);
* the cores — outstanding-miss concurrency scales with core frequency
  (``bw_per_core_hz`` per core), which is why deep power caps throttle
  memory bandwidth even for pure streaming phases.  The paper floors
  the dynamic cap at 65 W for exactly this reason.

DRAM power is background (refresh, PLLs) plus an energy-per-byte term,
the standard DDR4 activate/read/write accounting collapsed to a single
coefficient.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CoreConfig, MemoryConfig, UncoreConfig

__all__ = ["MemorySystem"]


@dataclass
class MemorySystem:
    """Bandwidth roofline and DRAM power model of one socket."""

    cfg: MemoryConfig
    core_cfg: CoreConfig
    uncore_cfg: UncoreConfig

    def __post_init__(self) -> None:
        self.cfg.validate()
        self.core_cfg.validate()
        self.uncore_cfg.validate()

    def uncore_bw_limit(self, uncore_hz: float) -> float:
        """Bandwidth ceiling imposed by the uncore clock, bytes/s."""
        if uncore_hz <= 0:
            raise ValueError("uncore frequency must be positive")
        return min(self.cfg.peak_bw_bytes, self.cfg.bw_per_uncore_hz * uncore_hz)

    def core_bw_limit(self, core_hz: float, active_cores: int | None = None) -> float:
        """Bandwidth ceiling imposed by request concurrency, bytes/s."""
        if core_hz <= 0:
            raise ValueError("core frequency must be positive")
        n = self.core_cfg.count if active_cores is None else active_cores
        if n <= 0:
            raise ValueError("active core count must be positive")
        return self.cfg.bw_per_core_hz * core_hz * n

    def achievable_bandwidth(
        self, core_hz: float, uncore_hz: float, active_cores: int | None = None
    ) -> float:
        """Deliverable socket bandwidth at the given clocks, bytes/s."""
        return min(
            self.cfg.peak_bw_bytes,
            self.uncore_bw_limit(uncore_hz),
            self.core_bw_limit(core_hz, active_cores),
        )

    def saturation_uncore_hz(self) -> float:
        """Lowest uncore frequency that still delivers peak bandwidth."""
        return self.cfg.peak_bw_bytes / self.cfg.bw_per_uncore_hz

    def traffic_utilisation(self, bandwidth_bytes: float) -> float:
        """Fraction of peak bandwidth in use; clamped to [0, 1]."""
        if bandwidth_bytes < 0:
            raise ValueError("bandwidth must be non-negative")
        return min(bandwidth_bytes / self.cfg.peak_bw_bytes, 1.0)

    def dram_power(self, bandwidth_bytes: float) -> float:
        """DRAM power at a sustained bandwidth, watts."""
        if bandwidth_bytes < 0:
            raise ValueError("bandwidth must be non-negative")
        return self.cfg.dram_static_w + self.cfg.dram_energy_per_byte * bandwidth_bytes
