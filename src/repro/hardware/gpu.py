"""A simulated GPU: the paper's future-work co-processor.

The paper closes by asking whether a shared power budget can be shifted
between a CPU and a GPU according to their needs (§VII).  This module
supplies the GPU half at the same granularity as the CPU socket model:
a roofline execution model (SM compute roof vs HBM bandwidth roof), a
``P = static + k·V²·f`` power model over a boost-clock range, and an
nvidia-smi-style software power limit that the device honours by
down-clocking — the exact mechanism of ``nvidia-smi -pl``.

The model is deliberately V100-shaped: ~7 TFLOP/s FP64, ~900 GB/s HBM2,
250 W board power, 300 W limit ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, HardwareError, SimulationError
from ..units import smooth_max

__all__ = [
    "GPUConfig",
    "GPUKernel",
    "GPUNodeConfig",
    "SimulatedGPU",
    "GPUState",
]


@dataclass(frozen=True)
class GPUConfig:
    """A V100-class accelerator."""

    #: Boost-clock range, Hz.
    min_freq_hz: float = 0.8e9
    max_freq_hz: float = 1.38e9
    step_hz: float = 15e6
    #: FP64 FLOPs per SM clock across the device (80 SMs x 32 lanes x 2).
    flops_per_hz: float = 5120.0
    #: HBM2 bandwidth, bytes/s (clock-independent in this model).
    hbm_bw_bytes: float = 900e9
    #: Idle/static board power, watts.
    static_w: float = 40.0
    #: Dynamic coefficient, watts per (GHz · V²).
    k_dyn: float = 170.0
    #: Voltage at the min/max boost clock.
    v_min: float = 0.75
    v_max: float = 1.00
    #: Default software power limit (board TDP), watts.
    power_limit_default_w: float = 250.0
    #: Lowest accepted software power limit, watts.
    power_limit_floor_w: float = 100.0

    def validate(self) -> None:
        if not 0 < self.min_freq_hz <= self.max_freq_hz:
            raise ConfigurationError("GPU clock range invalid")
        if self.step_hz <= 0 or self.flops_per_hz <= 0 or self.hbm_bw_bytes <= 0:
            raise ConfigurationError("GPU throughput parameters must be positive")
        if self.static_w < 0 or self.k_dyn <= 0:
            raise ConfigurationError("GPU power parameters invalid")
        if not 0 < self.v_min <= self.v_max:
            raise ConfigurationError("GPU voltages invalid")
        if not 0 < self.power_limit_floor_w <= self.power_limit_default_w:
            raise ConfigurationError("GPU power limits invalid")

    def voltage_at(self, freq_hz: float) -> float:
        if self.max_freq_hz == self.min_freq_hz:
            return self.v_max
        t = (freq_hz - self.min_freq_hz) / (self.max_freq_hz - self.min_freq_hz)
        t = min(max(t, 0.0), 1.0)
        return self.v_min + t * (self.v_max - self.v_min)


@dataclass(frozen=True)
class GPUKernel:
    """One kernel launch: FLOPs plus HBM traffic."""

    name: str
    flops: float
    bytes: float

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes < 0:
            raise ConfigurationError(f"kernel {self.name!r}: negative work")
        if self.flops == 0 and self.bytes == 0:
            raise ConfigurationError(f"kernel {self.name!r}: no work")


@dataclass(frozen=True)
class GPUNodeConfig:
    """The GPU side of a heterogeneous node, as carried by a run spec.

    Describes everything the hetero engine needs beyond the CPU socket:
    how many accelerators share the node budget, the uniform kernel
    queue each one executes, and the host↔device link whose effective
    bandwidth scales with the *CPU uncore* frequency — the coupling
    measured by *Exploring Uncore Frequency Scaling for Heterogeneous
    Computing* (PAPERS.md): PCIe/NVLink transfers ride the uncore
    (mesh + IIO) clock, so an uncore-scaling controller on the host
    directly moves accelerator transfer time.

    Frozen, picklable and canonically hashable, so it folds into
    :func:`~repro.experiments.executor.spec_key` cache addresses when
    attached to a :class:`~repro.experiments.executor.RunSpec`.
    """

    #: The accelerator model every GPU of the node shares.
    gpu: GPUConfig = field(default_factory=GPUConfig)
    #: Number of identical GPUs under the shared budget.
    gpu_count: int = 1
    #: Kernels in the node-wide queue (distributed round-robin).
    kernel_count: int = 8
    #: FP64 FLOPs per kernel.
    kernel_flops: float = 6e12
    #: HBM traffic per kernel, bytes.
    kernel_bytes: float = 0.75e12
    #: Host→device input staged before each kernel, bytes.
    input_bytes: float = 2e9
    #: Device→host output drained after each kernel, bytes.
    output_bytes: float = 1e9
    #: Peak host↔device link bandwidth at the maximum uncore clock,
    #: bytes/s (PCIe gen3 x16-shaped).
    link_bw_bytes: float = 16e9
    #: Fraction of the link bandwidth that scales with the CPU uncore
    #: frequency: ``bw = link_bw · (1 - s + s · f_uncore / f_uncore_max)``.
    #: 0 decouples transfers from the uncore; 1 makes them fully
    #: proportional.
    link_uncore_sensitivity: float = 0.6

    def validate(self) -> None:
        self.gpu.validate()
        if self.gpu_count < 1:
            raise ConfigurationError("node needs at least one GPU")
        if self.kernel_count < 1:
            raise ConfigurationError("kernel queue cannot be empty")
        if self.kernel_flops < 0 or self.kernel_bytes < 0:
            raise ConfigurationError("kernel work must be non-negative")
        if self.kernel_flops == 0 and self.kernel_bytes == 0:
            raise ConfigurationError("kernels must carry some work")
        if self.input_bytes < 0 or self.output_bytes < 0:
            raise ConfigurationError("transfer sizes must be non-negative")
        if self.link_bw_bytes <= 0:
            raise ConfigurationError("link bandwidth must be positive")
        if not 0.0 <= self.link_uncore_sensitivity <= 1.0:
            raise ConfigurationError("link_uncore_sensitivity must be in [0, 1]")

    def build_kernels(self) -> list[GPUKernel]:
        """The node-wide kernel queue described by this config."""
        return [
            GPUKernel(
                f"kernel[{i}]", flops=self.kernel_flops, bytes=self.kernel_bytes
            )
            for i in range(self.kernel_count)
        ]

    def link_bw_at(self, uncore_frac: float) -> float:
        """Effective host↔device bandwidth at an uncore fraction.

        ``uncore_frac`` is the CPU uncore clock as a fraction of its
        maximum; the insensitive share of the link is always available.
        """
        frac = min(max(uncore_frac, 0.0), 1.0)
        s = self.link_uncore_sensitivity
        return self.link_bw_bytes * (1.0 - s + s * frac)


@dataclass(frozen=True)
class GPUState:
    """Snapshot after a step."""

    time_s: float
    freq_hz: float
    power_w: float
    flops_rate: float
    utilisation: float


@dataclass
class SimulatedGPU:
    """The device: clocks, power limit, kernel execution, energy."""

    config: GPUConfig = field(default_factory=GPUConfig)
    power_limit_w: float = 0.0
    energy_j: float = 0.0
    now_s: float = 0.0
    _last_state: GPUState | None = None

    def __post_init__(self) -> None:
        self.config.validate()
        if self.power_limit_w == 0.0:
            self.power_limit_w = self.config.power_limit_default_w

    # -- nvidia-smi style controls ---------------------------------------------

    def set_power_limit(self, watts: float) -> None:
        """``nvidia-smi -pl``: clamp the board's power target."""
        cfg = self.config
        if not cfg.power_limit_floor_w <= watts <= cfg.power_limit_default_w * 1.2:
            raise HardwareError(
                f"power limit {watts!r} W outside "
                f"[{cfg.power_limit_floor_w}, {cfg.power_limit_default_w * 1.2}]"
            )
        self.power_limit_w = watts

    def reset_power_limit(self) -> None:
        self.power_limit_w = self.config.power_limit_default_w

    # -- power/perf model ---------------------------------------------------------

    def power_at(self, freq_hz: float, utilisation: float) -> float:
        """Board power at a clock and utilisation."""
        if not 0.0 <= utilisation <= 1.0:
            raise HardwareError("utilisation must be in [0, 1]")
        v = self.config.voltage_at(freq_hz)
        return self.config.static_w + self.config.k_dyn * v * v * (
            freq_hz / 1e9
        ) * (0.3 + 0.7 * utilisation)

    def max_freq_under_limit(self, utilisation: float) -> float:
        """Highest boost clock whose power fits the software limit."""
        cfg = self.config
        steps = int(round((cfg.max_freq_hz - cfg.min_freq_hz) / cfg.step_hz))
        for i in range(steps, -1, -1):
            f = cfg.min_freq_hz + i * cfg.step_hz
            if self.power_at(f, utilisation) <= self.power_limit_w:
                return f
        return cfg.min_freq_hz

    def kernel_time(self, kernel: GPUKernel, freq_hz: float) -> float:
        """Roofline execution time of one kernel at a clock."""
        t_c = kernel.flops / (self.config.flops_per_hz * freq_hz)
        t_m = kernel.bytes / self.config.hbm_bw_bytes
        return smooth_max(t_c, t_m, 4.0)

    # -- stepping --------------------------------------------------------------------

    def step(self, dt_s: float, kernel: GPUKernel | None) -> float:
        """Advance ``dt_s`` running ``kernel`` (or idle); returns progress."""
        if dt_s <= 0:
            raise SimulationError("gpu step: non-positive dt")
        if kernel is None:
            freq = self.config.min_freq_hz
            power = self.power_at(freq, 0.0)
            progress = 0.0
            rate = 0.0
            util = 0.0
        else:
            # Utilisation: compute-roof share of the kernel's time.
            t_full = self.kernel_time(kernel, self.config.max_freq_hz)
            t_c = kernel.flops / (self.config.flops_per_hz * self.config.max_freq_hz)
            util = min(t_c / t_full, 1.0) if t_full > 0 else 0.0
            freq = self.max_freq_under_limit(util)
            t = self.kernel_time(kernel, freq)
            progress = dt_s / t
            rate = kernel.flops / t
            power = self.power_at(freq, util)
        self.energy_j += power * dt_s
        self.now_s += dt_s
        self._last_state = GPUState(
            time_s=self.now_s,
            freq_hz=freq,
            power_w=power,
            flops_rate=rate,
            utilisation=util,
        )
        return min(progress, 1.0)

    @property
    def state(self) -> GPUState:
        if self._last_state is None:
            raise SimulationError("gpu has not stepped yet")
        return self._last_state
