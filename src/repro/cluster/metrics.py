"""Fairness and tail metrics over per-node outcomes.

Capping a fleet trades energy against *whose* jobs slow down.  The
metrics here make that trade measurable alongside energy: Jain's
fairness index over per-node slowdown ratios (1.0 = perfectly even
throttling, → 1/n = one node absorbs everything) and a deterministic
linear-interpolation percentile for tail slowdown (the p99 makespan
ratio the cluster harness reports for co-located latency-sensitive +
batch traffic).  Pure functions over plain floats — no numpy, no
randomness — so golden traces and property tests pin them exactly.
"""

from __future__ import annotations

from ..errors import ExperimentError

__all__ = ["jain_index", "percentile", "slowdown_ratios"]


def jain_index(values: list[float]) -> float:
    """Jain's fairness index: ``(Σx)² / (n · Σx²)``.

    1.0 when every value is equal, approaching ``1/n`` as one value
    dominates.  All-zero inputs are perfectly even and return 1.0.
    """
    if not values:
        raise ExperimentError("fairness index needs at least one value")
    if any(v < 0 for v in values):
        raise ExperimentError("fairness index needs non-negative values")
    square_sum = sum(v * v for v in values)
    if square_sum == 0.0:
        return 1.0
    total = sum(values)
    return (total * total) / (len(values) * square_sum)


def percentile(values: list[float], q: float) -> float:
    """The ``q``-th percentile by sorted linear interpolation.

    Matches numpy's default (``linear``) method without importing
    numpy: rank ``(n-1)·q/100`` interpolated between the two nearest
    order statistics.  Deterministic and exact for the golden traces.
    """
    if not values:
        raise ExperimentError("percentile needs at least one value")
    if not 0.0 <= q <= 100.0:
        raise ExperimentError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    rank = (len(ordered) - 1) * q / 100.0
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


def slowdown_ratios(
    makespans_s: list[float], nominal_s: list[float]
) -> list[float]:
    """Per-node slowdown: measured makespan over nominal duration.

    1.0 means the node ran at its uncapped nominal speed; 1.25 means
    the fleet cap (or the node controller beneath it) cost 25 %.
    """
    if len(makespans_s) != len(nominal_s):
        raise ExperimentError(
            f"{len(makespans_s)} makespans for {len(nominal_s)} nominals"
        )
    if any(n <= 0 for n in nominal_s):
        raise ExperimentError("nominal durations must be positive")
    return [m / n for m, n in zip(makespans_s, nominal_s)]
