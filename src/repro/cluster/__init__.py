"""Cluster-scale hierarchical power capping (paper §VI, ROADMAP item 2).

A fleet coordinator owns one global power budget and re-partitions it
across N simulated nodes every allocation period; each node runs the
existing per-socket controller stack (DUFP, the budget coordinator,
any registered policy) beneath its assigned cap.  The package supplies
the deterministic multi-node engine (:mod:`repro.cluster.engine`), the
frozen spec that threads cluster cells through ``RunSpec``/sweep/cache
(:mod:`repro.cluster.spec`) and the fairness/tail metrics that make
co-located latency-sensitive + batch workloads first-class
(:mod:`repro.cluster.metrics`).  Fleet *policies* live in
:mod:`repro.core.fleet` and are selected through the registry
(``fleet-static``, ``fleet-demand``, ``fleet-fair``), never imported
directly — see docs/CLUSTER.md.
"""

from .engine import FLEET_HEADROOM_W, NODE_SEED_STRIDE, ClusterEngine, ClusterResult
from .metrics import jain_index, percentile, slowdown_ratios
from .spec import ClusterSpec

__all__ = [
    "ClusterSpec",
    "ClusterEngine",
    "ClusterResult",
    "NODE_SEED_STRIDE",
    "FLEET_HEADROOM_W",
    "jain_index",
    "percentile",
    "slowdown_ratios",
]
