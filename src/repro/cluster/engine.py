"""The cluster engine: N node simulations in fleet-coordinated lockstep.

Each node is one complete :class:`~repro.sim.engine.SimulationEngine`
— its own machine, controllers, RNG stream and fault injector — built
exactly as a plain node run builds it, with a deterministic per-node
seed offset (``NODE_SEED_STRIDE``; node 0 keeps the run seed).  The
cluster engine interleaves one :class:`~repro.sim.engine.
SimulationStepper` per node tick by tick, and every ``period_s`` of
simulated time asks the selected fleet policy to re-partition the
global budget from per-node demand bids (measured package power plus
headroom; finished nodes bid their floor and stop ticking).  Each
node's allocation is applied as a RAPL limit on its sockets — *unless*
the allocation sits at the node's ceiling and no cap was ever applied,
in which case the write is skipped entirely.  That skip is the
bit-identity mechanism: a 1-node ``fleet-static`` cluster with a
covering budget performs exactly the operations of the plain node run,
so its trace and summary are byte-identical (the differential matrix
in ``tests/test_cluster_equivalence.py`` enforces it).

Determinism mirrors the scalar engine's contract: same seed, same
spec, same policy → bit-identical traces, allocations and metrics, at
any node count.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..config import (
    ControllerConfig,
    EngineConfig,
    MachineConfig,
    NoiseConfig,
    SocketConfig,
    yeti_socket_config,
)
from ..core.registry import controller_factory
from ..errors import SimulationError
from ..sim.engine import SimulationStepper
from ..sim.faults import FaultPlan
from ..sim.machine import SimulatedMachine
from ..sim.result import RunResult, TraceSample
from ..sim.run import build_engine
from ..sim.trace import TraceSink
from ..workloads.application import Application
from .metrics import jain_index, percentile, slowdown_ratios
from .spec import ClusterSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.fleet import FleetPolicy
    from ..sim.faults import FaultEvent

__all__ = [
    "ClusterEngine",
    "ClusterResult",
    "NODE_SEED_STRIDE",
    "FLEET_HEADROOM_W",
]

#: Seed offset between consecutive nodes (a prime far above the
#: protocol's per-run stride of 1009, so node streams never collide
#: across the runs of one cell).  Node 0 keeps the run seed — part of
#: the 1-node bit-identity contract.
NODE_SEED_STRIDE = 100003

#: Watts of headroom a running node bids above its measured draw,
#: mirroring :class:`~repro.core.budget.NodeBudgetCoordinator`'s
#: within-node demand signal.
FLEET_HEADROOM_W = 5.0

#: Slack under the ceiling below which an allocation counts as "at the
#: ceiling" and needs no RAPL write (while the node is still uncapped).
_CEILING_EPS = 1e-9


class _NodeSink(TraceSink):
    """Per-node adapter onto one shared cluster-level trace sink.

    Node-local socket ids shift into the cluster-global id space
    (node ``i``, socket ``s`` → ``i·sockets_per_node + s``), so one
    streamed cluster trace keeps per-node records separable.  The
    shared sink is opened and closed exactly once by the cluster
    engine; the per-node ``open``/``close`` calls the node engines
    make are absorbed here.  Node-wide fault events (socket id −1)
    pass through unshifted.
    """

    def __init__(self, target: TraceSink, base: int):
        self._target = target
        self._base = base

    def open(self, socket_count: int) -> None:
        """Absorbed: the cluster engine opened the shared sink."""

    def close(self) -> None:
        """Absorbed: the cluster engine closes the shared sink."""

    def record(self, socket_id: int, sample: TraceSample) -> None:
        """Forward the sample under its cluster-global socket id."""
        self._target.record(self._base + socket_id, sample)

    def record_event(self, socket_id: int, event: "FaultEvent") -> None:
        """Forward the fault event, shifting per-socket ids."""
        if socket_id >= 0:
            event = dataclasses.replace(
                event, socket_id=self._base + socket_id
            )
            self._target.record_event(self._base + socket_id, event)
        else:
            self._target.record_event(socket_id, event)

    def collected(self, socket_id: int) -> list[TraceSample]:
        """Whatever the shared sink retained for the global id."""
        return self._target.collected(self._base + socket_id)

    def events(self) -> "list[FaultEvent]":
        """The shared sink's retained events (already id-shifted)."""
        return self._target.events()


@dataclass
class ClusterResult:
    """Everything one cluster run produced, per node and fleet-wide."""

    #: Display label of the fleet policy that partitioned the budget.
    policy_name: str
    #: The global budget the fleet policy partitioned, watts.
    budget_w: float
    #: One complete :class:`~repro.sim.result.RunResult` per node.
    nodes: list[RunResult]
    #: Allocation history: ``(time_s, (alloc_node0_w, ...))`` at t = 0
    #: and after every re-partition (static policies keep only t = 0).
    allocations: list[tuple[float, tuple[float, ...]]] = field(
        default_factory=list
    )
    #: Per-node nominal (uncapped, unjittered) durations, seconds.
    nominal_durations_s: list[float] = field(default_factory=list)

    @property
    def node_makespans_s(self) -> list[float]:
        """Per-node completion times (each node's slowest socket)."""
        return [r.execution_time_s for r in self.nodes]

    @property
    def makespan_s(self) -> float:
        """Fleet completion: the slowest node defines it."""
        return max(self.node_makespans_s)

    @property
    def package_energy_j(self) -> float:
        """Summed package energy across every node's sockets."""
        return sum(r.package_energy_j for r in self.nodes)

    @property
    def dram_energy_j(self) -> float:
        """Summed DRAM energy across every node's sockets."""
        return sum(r.dram_energy_j for r in self.nodes)

    @property
    def total_energy_j(self) -> float:
        """Package + DRAM energy of the whole fleet."""
        return sum(r.total_energy_j for r in self.nodes)

    @property
    def slowdowns(self) -> list[float]:
        """Per-node makespan over nominal duration (1.0 = uncapped)."""
        return slowdown_ratios(self.node_makespans_s, self.nominal_durations_s)

    @property
    def fairness_index(self) -> float:
        """Jain's index over the per-node slowdowns (1.0 = even)."""
        return jain_index(self.slowdowns)

    @property
    def p99_slowdown(self) -> float:
        """Tail slowdown: the p99 of the per-node makespan ratios."""
        return percentile(self.slowdowns, 99.0)

    @property
    def fault_events(self) -> "list[FaultEvent]":
        """Every node's fault events, node order then emission order."""
        return [e for r in self.nodes for e in r.fault_events]


@dataclass
class ClusterEngine:
    """Runs one fleet of node simulations under one global budget."""

    #: One application per node (``len == cluster.node_count``).
    applications: list[Application]
    cluster: ClusterSpec
    #: Fleet budget-partitioning policy, resolved via
    #: :func:`repro.core.registry.fleet_policy` — never constructed
    #: from concrete classes outside the registry.
    policy: "FleetPolicy"
    controller_cfg: ControllerConfig = field(default_factory=ControllerConfig)
    engine_cfg: EngineConfig = field(default_factory=EngineConfig)
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    socket: SocketConfig | None = None
    seed: int | None = None
    record_trace: bool = True
    #: Optional cluster-level sink receiving every node's samples under
    #: cluster-global socket ids (node i, socket s → i·spn + s).
    trace_sink: TraceSink | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        self.cluster.validate()
        if len(self.applications) != self.cluster.node_count:
            raise SimulationError(
                "one application per node required "
                f"({self.cluster.node_count} nodes, "
                f"{len(self.applications)} applications)"
            )

    # -- node construction -------------------------------------------------

    def _node_engines(self):
        """One fresh scalar engine per node, plain-run-identical.

        Node ``i`` seeds at ``seed + NODE_SEED_STRIDE·i`` (node 0 keeps
        the run seed) and gets a *fresh* controller factory, so
        stateful stacks (the budget coordinator) never span nodes.
        """
        spn = self.cluster.sockets_per_node
        seed0 = self.seed if self.seed is not None else self.noise.seed
        engines = []
        for i, app in enumerate(self.applications):
            machine = None
            if self.socket is not None:
                machine = SimulatedMachine(
                    MachineConfig(socket=self.socket, socket_count=spn)
                )
            sink = None
            if self.trace_sink is not None:
                sink = _NodeSink(self.trace_sink, i * spn)
            engines.append(
                build_engine(
                    app,
                    controller_factory(
                        self.cluster.node_controller, self.controller_cfg
                    ),
                    controller_cfg=self.controller_cfg,
                    machine=machine,
                    socket_count=spn,
                    noise=self.noise,
                    engine_cfg=self.engine_cfg,
                    seed=seed0 + NODE_SEED_STRIDE * i,
                    record_trace=self.record_trace,
                    trace_sink=sink,
                    faults=self.faults,
                )
            )
        return engines

    def _bounds(self) -> tuple[list[float], list[float]]:
        """Per-node (floors, ceilings) in watts, offered to the policy."""
        spn = self.cluster.sockets_per_node
        socket_cfg = self.socket or yeti_socket_config()
        ceiling = socket_cfg.rapl.pl1_default_w * spn
        floor = self.cluster.node_floor_w
        if floor is None:
            floor = self.controller_cfg.cap_floor_w * spn
        n = self.cluster.node_count
        return [floor] * n, [ceiling] * n

    # -- the fleet loop ----------------------------------------------------

    def _apply(
        self,
        steppers: list[SimulationStepper],
        allocs: list[float],
        ceilings: list[float],
        capped: list[bool],
    ) -> None:
        """Write each node's allocation to its sockets' RAPL limits.

        The bit-identity rule: an allocation at the ceiling on a node
        that was never capped needs no write — the hardware default
        already *is* that limit, and skipping keeps the node's
        operation stream identical to a plain uncoordinated run.  Once
        a node has been capped, allocations are always written so a
        later return to the ceiling actually lifts the cap.
        """
        spn = self.cluster.sockets_per_node
        for i, (stepper, alloc, hi) in enumerate(
            zip(steppers, allocs, ceilings)
        ):
            if not capped[i] and alloc >= hi - _CEILING_EPS:
                continue
            capped[i] = True
            per_socket_w = min(alloc, hi) / spn
            for proc in stepper.engine.machine.processors:
                proc.rapl.set_limits(per_socket_w, per_socket_w)

    def _demands(
        self,
        steppers: list[SimulationStepper],
        floors: list[float],
        ceilings: list[float],
    ) -> list[float]:
        """Per-node bids: measured package power + headroom, clamped.

        Ground truth (``proc.state``), not the controllers' noisy PAPI
        view — the fleet coordinator models an out-of-band telemetry
        path (BMC/RAPL energy counters).  Finished nodes bid their
        floor, releasing watts to the rest of the fleet.
        """
        bids = []
        for stepper, lo, hi in zip(steppers, floors, ceilings):
            if stepper.done:
                bids.append(lo)
                continue
            drawn = sum(
                proc.state.package.total_w
                for proc in stepper.engine.machine.processors
            )
            bids.append(min(max(drawn + FLEET_HEADROOM_W, lo), hi))
        return bids

    def run(self) -> ClusterResult:
        """Execute every node to completion under the fleet policy."""
        engines = self._node_engines()
        floors, ceilings = self._bounds()
        dt = self.engine_cfg.dt_s
        ticks_per_period = max(1, round(self.cluster.period_s / dt))
        steppers: list[SimulationStepper] = []
        if self.trace_sink is not None:
            self.trace_sink.open(
                self.cluster.node_count * self.cluster.sockets_per_node
            )
        try:
            steppers = [engine.stepper() for engine in engines]
            allocs = self.policy.initial(floors, ceilings)
            capped = [False] * self.cluster.node_count
            allocations = [(0.0, tuple(allocs))]
            self._apply(steppers, allocs, ceilings, capped)
            tick = 0
            while not all(s.done for s in steppers):
                for stepper in steppers:
                    if not stepper.done:
                        stepper.tick()
                tick += 1
                if self.policy.is_static or tick % ticks_per_period:
                    continue
                bids = self._demands(steppers, floors, ceilings)
                allocs = self.policy.allocate(bids, floors, ceilings)
                allocations.append((tick * dt, tuple(allocs)))
                self._apply(steppers, allocs, ceilings, capped)
        finally:
            for stepper in steppers:
                stepper.close()
            if self.trace_sink is not None:
                self.trace_sink.close()
        nodes = [stepper.result() for stepper in steppers]
        return ClusterResult(
            policy_name=getattr(self.policy, "name", "fleet"),
            budget_w=self.policy.budget_w,
            nodes=nodes,
            allocations=allocations,
            nominal_durations_s=[
                app.nominal_duration(self.socket) for app in self.applications
            ],
        )
