"""The frozen description of a cluster cell's node topology.

:class:`ClusterSpec` is to the cluster engine what
:class:`~repro.hardware.gpu.GPUNodeConfig` is to the hetero engine:
a frozen, picklable, canonically hashable value object that rides on
:class:`~repro.experiments.executor.RunSpec` (behind a
``digest_omit_default`` field, so every pre-existing CPU-only digest
stays byte-identical) and fully determines the node layout of one
cluster run — how many nodes, which application each runs, which
per-socket controller stack operates beneath the fleet cap, and how
often the fleet coordinator re-partitions the global budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExperimentError

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """Node topology and fleet cadence of one cluster cell.

    The *global budget* is not here: it is a parameter of the selected
    fleet policy (``fleet-demand:budget_w=400``), exactly as hetero
    budgets live on the split policies — so sweeping budgets sweeps
    policy parameters, and the cluster spec can be shared across cells.
    """

    #: Number of simulated nodes under the fleet coordinator.
    node_count: int = 2
    #: Application names cycled over the nodes (node ``i`` runs
    #: ``node_apps[i % len]``).  Empty means every node runs the
    #: enclosing ``RunSpec.app_name`` — the homogeneous-fleet default
    #: that keeps sweep grids meaningful.
    node_apps: tuple[str, ...] = ()
    #: Registry selection (``"dufp"``, ``"budget:watts=130"``, …) for
    #: the per-socket controller stack each node runs beneath its cap.
    node_controller: str = "dufp"
    #: Sockets per node; each node is an independent machine.
    sockets_per_node: int = 1
    #: Fleet re-allocation period, seconds of simulated time.
    period_s: float = 1.0
    #: Per-node power floor offered to the fleet policy, watts.
    #: ``None`` derives ``sockets_per_node × ControllerConfig.
    #: cap_floor_w`` (the paper's 65 W per-socket RAPL floor).
    node_floor_w: float | None = None

    def validate(self) -> None:
        """Raise :class:`ExperimentError` on an unusable topology."""
        from ..core.registry import as_spec, policy_info

        if self.node_count < 1:
            raise ExperimentError("cluster needs at least one node")
        if self.sockets_per_node < 1:
            raise ExperimentError("nodes need at least one socket")
        if self.period_s <= 0:
            raise ExperimentError("fleet period must be positive")
        if self.node_floor_w is not None and self.node_floor_w <= 0:
            raise ExperimentError("node floor must be positive")
        if not isinstance(self.node_apps, tuple):
            raise ExperimentError("node_apps must be a tuple of names")
        spec = as_spec(self.node_controller)
        info = policy_info(spec.name)
        if info.hetero or info.fleet:
            raise ExperimentError(
                f"node controller {spec.name!r} is a budget-split policy; "
                "nodes run per-socket controller stacks beneath the fleet cap"
            )

    def app_for(self, node_index: int, default: str) -> str:
        """The application name node ``node_index`` runs."""
        if not self.node_apps:
            return default
        return self.node_apps[node_index % len(self.node_apps)]
