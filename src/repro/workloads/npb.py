"""Synthetic NAS Parallel Benchmarks: BT, CG, EP, FT, LU, MG, SP, UA.

Each builder returns an :class:`~repro.workloads.application.Application`
whose counter signature — per-phase operational intensity, FLOP rate,
phase cadence — matches what the paper reports observing for the real
NPB-3.3.1 OpenMP runs (class D, except SP in class C):

* **CG** opens with several seconds of almost pure memory accesses
  (OI < 0.02) before its SpMV iteration loop — the phase the paper's
  motivating experiment power-caps to 65 W for free (Section II-A);
* **EP** is pure compute with negligible memory traffic, the workload
  where uncore scaling dominates the savings (Section V-B);
* **UA** alternates one compute-bound iteration with several
  memory-bound ones; the short memory window tricks the controller
  into lowering the cap right before compute returns, the paper's
  explanation for UA's 0 %-tolerance violation (Section V-A);
* **LU**'s pipelined wavefront sweeps are latency-bound on the uncore,
  so both DUF and DUFP pay a small overhead there (Section V-A);
* **MG** streams through grids fast enough that a slowed uncore
  mistrains the prefetcher (overfetch), showing up as the small DRAM
  power *loss* at 0 % tolerance in Fig. 4;
* **BT/SP** alternate solver sweeps whose OI class flips around 1.0,
  forcing frequent phase resets that strand DUF near the uncore
  maximum (its 0.64 % savings on BT) while leaving DUFP's cap room to
  work at high tolerance.

Durations are scaled to ≈ 20–35 simulated seconds (the paper uses
20–400 s; the controllers are time-invariant, so shorter runs with the
same phase cadence exercise identical decision sequences while keeping
the full 10-run × 40-configuration protocol tractable in pure Python).
"""

from __future__ import annotations

from ..config import SocketConfig
from .application import Application
from .phase import phase_from_duration as pfd

__all__ = ["bt", "cg", "ep", "ft", "lu", "mg", "sp", "ua"]


def bt(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """Block-tridiagonal solver: x/y/z sweeps plus an RHS update."""
    loop = [
        pfd("bt.x_solve", 0.40 * scale, oi=2.2, fpc=8.0, uncore_sensitivity=0.45, socket=socket),
        pfd("bt.y_solve", 0.40 * scale, oi=2.1, fpc=8.0, uncore_sensitivity=0.45, socket=socket),
        pfd("bt.z_solve", 0.40 * scale, oi=2.3, fpc=8.0, uncore_sensitivity=0.45, socket=socket),
        pfd("bt.rhs", 0.30 * scale, oi=0.75, fpc=3.0, uncore_sensitivity=0.2, socket=socket),
    ]
    return Application.from_pattern(
        "BT",
        loop=loop,
        iterations=20,
        structure="20 iterations of x/y/z line solves (OI ≈ 2) + RHS (OI ≈ 0.75)",
    )


def cg(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """Conjugate gradient: long memory-only setup, then SpMV iterations."""
    setup = [
        # The initialisation sprays allocation/first-touch traffic from
        # all cores at once; its power demand sits near the budget even
        # though it retires almost no FLOPs (paper Fig. 1b: "under the
        # default configuration, the power consumption is almost at the
        # maximum processor budget").
        pfd("cg.setup", 1.50 * scale, oi=0.015, fpc=0.5, power_boost=1.12, socket=socket),
    ]
    loop = [
        pfd(
            "cg.spmv",
            1.00 * scale,
            oi=0.12,
            fpc=0.32,
            latency_sensitivity=0.35,
            socket=socket,
        ),
        # Dot products are sub-millisecond per occurrence in real CG; a
        # 200 ms sampling interval cannot resolve them, so they appear
        # as a tiny, low-contrast blip.
        pfd("cg.reduce", 0.02 * scale, oi=0.20, fpc=0.5, socket=socket),
    ]
    return Application.from_pattern(
        "CG",
        setup=setup,
        loop=loop,
        iterations=26,
        structure="memory-only setup (≈5 % of run, OI 0.015) + 26 SpMV iterations",
    )


def ep(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """Embarrassingly parallel: one long compute phase, no memory."""
    return Application.from_pattern(
        "EP",
        loop=[pfd("ep.rng", 25.0 * scale, oi=4000.0, fpc=4.0, socket=socket)],
        iterations=1,
        structure="single compute-only phase (Gaussian pair generation)",
    )


def ft(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """3-D FFT: compute butterflies alternating with transpose streams."""
    loop = [
        pfd("ft.fft", 1.10 * scale, oi=3.0, fpc=10.0, uncore_sensitivity=0.2, socket=socket),
        pfd("ft.transpose", 1.30 * scale, oi=0.04, fpc=0.8, socket=socket),
    ]
    return Application.from_pattern(
        "FT",
        loop=loop,
        iterations=10,
        structure="10 iterations of FFT compute (OI 3) + all-to-all transpose (OI 0.04)",
    )


def lu(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """SSOR solver: wavefront sweeps, latency-bound on the uncore."""
    loop = [
        pfd(
            "lu.ssor",
            0.60 * scale,
            oi=1.8,
            fpc=6.0,
            latency_sensitivity=0.35,
            uncore_sensitivity=0.3,
            socket=socket,
        ),
        pfd(
            "lu.rhs",
            0.40 * scale,
            oi=1.3,
            fpc=4.0,
            latency_sensitivity=0.2,
            uncore_sensitivity=0.2,
            socket=socket,
        ),
    ]
    return Application.from_pattern(
        "LU",
        loop=loop,
        iterations=25,
        structure="25 SSOR wavefront sweeps; uncore-latency sensitive",
    )


def mg(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """Multigrid V-cycles: bandwidth-heavy with prefetch overfetch.

    Real MG sweeps each grid level in tens of milliseconds, far below
    the 200 ms sampling interval, so the controller sees a smooth
    mixture of the resid/psinv/interp rates rather than distinct
    segments.  The model uses the same sub-interval granularity.
    """
    loop = [
        pfd("mg.resid", 0.050 * scale, oi=0.25, fpc=1.0, overfetch=0.30, socket=socket),
        pfd("mg.psinv", 0.040 * scale, oi=0.30, fpc=1.2, overfetch=0.30, socket=socket),
        pfd("mg.interp", 0.030 * scale, oi=0.18, fpc=0.8, overfetch=0.40, socket=socket),
    ]
    return Application.from_pattern(
        "MG",
        loop=loop,
        iterations=200,
        structure="200 V-cycles of sub-interval resid/psinv/interp grid sweeps",
    )


def sp(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """Scalar pentadiagonal solver (class C): lighter BT sibling."""
    loop = [
        pfd("sp.x_solve", 0.35 * scale, oi=1.6, fpc=6.0, uncore_sensitivity=0.35, socket=socket),
        pfd("sp.y_solve", 0.35 * scale, oi=1.5, fpc=6.0, uncore_sensitivity=0.35, socket=socket),
        pfd("sp.z_solve", 0.35 * scale, oi=1.7, fpc=6.0, uncore_sensitivity=0.35, socket=socket),
        pfd("sp.rhs", 0.25 * scale, oi=0.6, fpc=2.0, uncore_sensitivity=0.15, socket=socket),
    ]
    return Application.from_pattern(
        "SP",
        loop=loop,
        iterations=20,
        structure="20 iterations of x/y/z pentadiagonal sweeps + RHS",
    )


def ua(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """Unstructured adaptive mesh: 1 compute iteration, then N memory ones.

    The memory block is long enough (4–5 controller ticks) for DUFP to
    walk the cap down ~20–25 W, so the next compute iteration starts
    throttled — the paper's explanation of UA's small 0 % violation.
    """
    loop = [
        pfd("ua.compute", 1.00 * scale, oi=8.0, fpc=10.0, uncore_sensitivity=0.1, socket=socket),
        pfd("ua.mem", 0.45 * scale, oi=0.07, fpc=0.5, socket=socket),
        pfd("ua.mem", 0.45 * scale, oi=0.07, fpc=0.5, socket=socket),
    ]
    return Application.from_pattern(
        "UA",
        loop=loop,
        iterations=13,
        structure="13 × (1 compute-bound iteration + several memory-bound iterations)",
    )
