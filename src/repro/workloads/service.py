"""Co-located datacenter traffic: a latency-sensitive WEB service and
a throughput BATCH analytics job.

The paper evaluates single-node HPC workloads; the cluster harness
needs traffic where *whose* jobs slow down matters, not just by how
much.  These two builders model the canonical co-location study pair
(latency-critical service + best-effort batch, as in power-capped
cluster managers): WEB's request loop is dominated by short
latency-sensitive phases that pay disproportionately when the uncore
or power cap drops, while BATCH streams through memory at high
bandwidth and tolerates throttling almost linearly.  Running them on
different nodes under one fleet budget makes the fairness index and
p99 slowdown metrics of :mod:`repro.cluster` discriminating: a fleet
policy that starves the WEB node shows up immediately.

They live in a *service* catalog separate from
:data:`~repro.workloads.catalog.APPLICATIONS` because the paper's
figures — and the tests pinning them — enumerate exactly the ten HPC
applications; service workloads resolve through the same
:func:`~repro.workloads.catalog.build_application` without widening
``application_names()``.
"""

from __future__ import annotations

from ..config import SocketConfig
from .application import Application
from .phase import phase_from_duration as pfd

__all__ = ["web", "batch"]


def web(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """Latency-sensitive request serving: short hot loops, cache churn.

    Request handling alternates sub-interval compute bursts (protocol
    parsing, templating — latency-bound on the uncore) with pointer-
    chasing lookups.  High ``latency_sensitivity`` means a lowered cap
    stretches the service time directly, which is exactly the tail the
    cluster harness's p99 slowdown metric is meant to expose.
    """
    loop = [
        pfd(
            "web.serve",
            0.12 * scale,
            oi=1.2,
            fpc=3.0,
            latency_sensitivity=0.55,
            uncore_sensitivity=0.35,
            socket=socket,
        ),
        pfd(
            "web.lookup",
            0.08 * scale,
            oi=0.10,
            fpc=0.6,
            latency_sensitivity=0.45,
            socket=socket,
        ),
    ]
    return Application.from_pattern(
        "WEB",
        loop=loop,
        iterations=110,
        structure="110 request bursts of serve (OI 1.2, latency-bound) + lookup (OI 0.1)",
    )


def batch(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """Best-effort analytics: long scans, streaming memory traffic.

    A scan/aggregate loop whose OI stays deep in the memory-bound
    regime — the profile DUFP caps hardest for the least slowdown, so
    a demand-driven fleet policy should shift budget *away* from this
    node toward co-located latency-sensitive traffic.
    """
    loop = [
        pfd(
            "batch.scan",
            1.10 * scale,
            oi=0.04,
            fpc=0.6,
            power_boost=1.05,
            socket=socket,
        ),
        pfd("batch.aggregate", 0.35 * scale, oi=0.9, fpc=2.5, socket=socket),
    ]
    return Application.from_pattern(
        "BATCH",
        loop=loop,
        iterations=16,
        structure="16 scan/aggregate passes; memory-streaming (OI 0.04) dominated",
    )
