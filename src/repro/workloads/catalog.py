"""The experiment catalog: name → builder for the paper's ten apps.

A second, separate catalog (:data:`SERVICE_APPLICATIONS`) holds the
datacenter co-location traffic used by the cluster harness; it
resolves through :func:`build_application` but never widens
:func:`application_names`, which figures and tests pin to the paper's
ten HPC applications.
"""

from __future__ import annotations

from typing import Callable

from ..config import SocketConfig
from ..errors import WorkloadError
from .application import Application
from .hpl import hpl
from .lammps import lammps
from .npb import bt, cg, ep, ft, lu, mg, sp, ua
from .service import batch, web

__all__ = [
    "APPLICATIONS",
    "SERVICE_APPLICATIONS",
    "application_names",
    "build_application",
]

#: Builders for every application in the paper's evaluation, in the
#: order Figures 3 and 4 list them.
APPLICATIONS: dict[str, Callable[..., Application]] = {
    "BT": bt,
    "CG": cg,
    "EP": ep,
    "FT": ft,
    "LU": lu,
    "MG": mg,
    "SP": sp,
    "UA": ua,
    "HPL": hpl,
    "LAMMPS": lammps,
}

#: Datacenter co-location traffic for the cluster harness: resolvable
#: by name everywhere, but outside the paper's pinned figure set.
SERVICE_APPLICATIONS: dict[str, Callable[..., Application]] = {
    "WEB": web,
    "BATCH": batch,
}


def application_names() -> tuple[str, ...]:
    """Catalog names in the order Figures 3 and 4 list the applications."""
    return tuple(APPLICATIONS)


def build_application(
    name: str, scale: float = 1.0, socket: SocketConfig | None = None
) -> Application:
    """Instantiate an application from the catalog by (case-insensitive) name."""
    builder = APPLICATIONS.get(name.upper()) or SERVICE_APPLICATIONS.get(
        name.upper()
    )
    if builder is None:
        available = ", ".join([*APPLICATIONS, *SERVICE_APPLICATIONS])
        raise WorkloadError(
            f"unknown application {name!r}; available: {available}"
        )
    return builder(scale=scale, socket=socket)
