"""The experiment catalog: name → builder for the paper's ten apps."""

from __future__ import annotations

from typing import Callable

from ..config import SocketConfig
from ..errors import WorkloadError
from .application import Application
from .hpl import hpl
from .lammps import lammps
from .npb import bt, cg, ep, ft, lu, mg, sp, ua

__all__ = ["APPLICATIONS", "application_names", "build_application"]

#: Builders for every application in the paper's evaluation, in the
#: order Figures 3 and 4 list them.
APPLICATIONS: dict[str, Callable[..., Application]] = {
    "BT": bt,
    "CG": cg,
    "EP": ep,
    "FT": ft,
    "LU": lu,
    "MG": mg,
    "SP": sp,
    "UA": ua,
    "HPL": hpl,
    "LAMMPS": lammps,
}


def application_names() -> tuple[str, ...]:
    """Catalog names in the order Figures 3 and 4 list the applications."""
    return tuple(APPLICATIONS)


def build_application(
    name: str, scale: float = 1.0, socket: SocketConfig | None = None
) -> Application:
    """Instantiate an application from the catalog by (case-insensitive) name."""
    builder = APPLICATIONS.get(name.upper())
    if builder is None:
        raise WorkloadError(
            f"unknown application {name!r}; available: {', '.join(APPLICATIONS)}"
        )
    return builder(scale=scale, socket=socket)
