"""High-Performance Linpack: DGEMM-dominated dense LU factorisation.

HPL (N = 91840, NB = 224, P×Q = 8×8 in the paper) spends the large
majority of its time in MKL's DGEMM trailing-matrix updates — highly
vectorised, operational intensity far above the paper's OI > 100
"highly CPU intensive" threshold — punctuated by lower-intensity panel
factorisations and broadcasts.  DGEMM tiles stream through the LLC, so
the compute rate is sensitive to the uncore clock: that is what keeps
DUF's uncore reductions (and hence its savings, < 7 % in the paper)
modest on this workload.
"""

from __future__ import annotations

from ..config import SocketConfig
from .application import Application
from .phase import phase_from_duration as pfd

__all__ = ["hpl"]


def hpl(scale: float = 1.0, socket: SocketConfig | None = None) -> Application:
    """HPL 2.3 with the paper's problem geometry, time-scaled."""
    loop = [
        pfd(
            "hpl.update",
            1.40 * scale,
            oi=150.0,
            fpc=24.0,
            uncore_sensitivity=0.30,
            socket=socket,
        ),
        # Panel factorisation retires far fewer FLOPs but streams the
        # same panel data, so its DRAM bandwidth matches the update's
        # (OI scales with the FLOP rate) while FLOPS/s sag — the
        # sawtooth the controller rides on real HPL.
        pfd(
            "hpl.panel",
            0.30 * scale,
            oi=37.0,
            fpc=6.0,
            uncore_sensitivity=0.20,
            socket=socket,
        ),
    ]
    return Application.from_pattern(
        "HPL",
        loop=loop,
        iterations=18,
        structure="18 iterations of DGEMM trailing update (OI 150) + panel factorisation",
    )
