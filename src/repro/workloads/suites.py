"""Named application suites for sweeps and CLI use.

The paper evaluates all ten applications; development iterations want
smaller, characterised subsets.  Suites group catalog names by the
behaviour that dominates their response to DUFP.
"""

from __future__ import annotations

from ..errors import WorkloadError
from .catalog import application_names

__all__ = ["SUITES", "suite_names", "suite"]

#: name -> tuple of catalog application names.
SUITES: dict[str, tuple[str, ...]] = {
    # Everything the paper evaluates, figure order.
    "paper": application_names(),
    # A fast development probe: one memory-bound, one compute-bound.
    "quick": ("CG", "EP"),
    # Bandwidth-dominated: deep caps are cheap, uncore is load-bearing.
    "memory-bound": ("CG", "FT", "MG"),
    # Compute-dominated: caps bite immediately, uncore is waste.
    "cpu-bound": ("EP", "HPL", "BT", "SP"),
    # The paper's §V-A problem children.
    "violators": ("UA", "LAMMPS", "CG"),
}


def suite_names() -> tuple[str, ...]:
    """All defined suite names."""
    return tuple(SUITES)


def suite(name: str) -> tuple[str, ...]:
    """Application names of a suite (case-insensitive lookup)."""
    key = name.lower()
    if key not in SUITES:
        raise WorkloadError(
            f"unknown suite {name!r}; available: {', '.join(SUITES)}"
        )
    return SUITES[key]
