"""Seeded random applications for property-based testing.

The generator samples phase sequences across the full character space
(pure compute, pure memory, balanced, latency-bound) so property tests
can assert simulator and controller invariants on workloads nobody
hand-tuned.
"""

from __future__ import annotations

import numpy as np

from ..config import SocketConfig, yeti_socket_config
from ..errors import WorkloadError
from .application import Application
from .phase import phase_from_duration

__all__ = ["random_application"]


def random_application(
    seed: int,
    *,
    max_phases: int = 12,
    min_duration_s: float = 0.05,
    max_duration_s: float = 2.0,
    socket: SocketConfig | None = None,
) -> Application:
    """A reproducible random application for the given ``seed``."""
    if max_phases < 1:
        raise WorkloadError("max_phases must be at least 1")
    if not 0 < min_duration_s <= max_duration_s:
        raise WorkloadError("invalid duration bounds")
    rng = np.random.default_rng(seed)
    socket = socket or yeti_socket_config()
    n = int(rng.integers(1, max_phases + 1))
    phases = []
    for i in range(n):
        kind = rng.choice(["compute", "memory", "balanced", "latency"])
        duration = float(rng.uniform(min_duration_s, max_duration_s))
        if kind == "compute":
            oi = float(rng.uniform(50.0, 5000.0))
            fpc = float(rng.uniform(2.0, 24.0))
            ls, us = 0.0, float(rng.uniform(0.0, 0.4))
        elif kind == "memory":
            oi = float(rng.uniform(0.005, 0.1))
            fpc = float(rng.uniform(0.3, 1.5))
            ls, us = 0.0, 0.0
        elif kind == "balanced":
            oi = float(rng.uniform(0.3, 5.0))
            fpc = float(rng.uniform(1.0, 10.0))
            ls, us = 0.0, float(rng.uniform(0.0, 0.3))
        else:
            oi = float(rng.uniform(0.5, 3.0))
            fpc = float(rng.uniform(1.0, 8.0))
            ls, us = float(rng.uniform(0.1, 0.5)), float(rng.uniform(0.0, 0.3))
        phases.append(
            phase_from_duration(
                f"rand.{kind}[{i}]",
                duration,
                oi=oi,
                fpc=fpc,
                latency_sensitivity=ls,
                uncore_sensitivity=us,
                socket=socket,
            )
        )
    return Application(
        name=f"random-{seed}",
        phases=tuple(phases),
        structure=f"{n} random phases (seed {seed})",
    )
