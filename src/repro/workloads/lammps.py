"""LAMMPS molecular dynamics (``in.lj``, run 100000).

The Lennard-Jones benchmark alternates force computation, neighbour-
list rebuilds and halo communication.  The paper traced LAMMPS at 50 ms
resolution and found short power bursts that a 200 ms controller
interval averages away — its explanation for LAMMPS being the app
where DUFP misses the tolerance by up to 3.17 %.  The model inserts
seeded sub-interval compute bursts (30–60 ms) between iterations so a
200 ms controller sees the same aliasing.
"""

from __future__ import annotations

import numpy as np

from ..config import SocketConfig
from .application import Application
from .phase import phase_from_duration as pfd

__all__ = ["lammps"]


def lammps(
    scale: float = 1.0,
    socket: SocketConfig | None = None,
    seed: int = 42,
    burst_probability: float = 0.6,
) -> Application:
    """LAMMPS in.lj with seeded sub-200 ms power bursts."""
    if not 0.0 <= burst_probability <= 1.0:
        raise ValueError("burst_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    phases = []
    for block in range(4):
        for i in range(10):
            tag = f"{block}.{i}"
            phases.append(
                pfd(
                    f"lammps.force[{tag}]",
                    0.50 * scale,
                    oi=2.5,
                    fpc=7.0,
                    uncore_sensitivity=0.15,
                    socket=socket,
                )
            )
            # Halo exchange: sub-interval, averaged away by the meter.
            phases.append(
                pfd(f"lammps.comm[{tag}]", 0.03 * scale, oi=2.0, fpc=4.0, socket=socket)
            )
            if rng.random() < burst_probability:
                # Short, high-current burst (wide-vector section): the
                # FLOP rate barely moves but power spikes, so under a
                # cap RAPL throttles for the burst's duration — time the
                # 200 ms counters never attribute to a FLOPS/s drop.
                # This is the paper's explanation for LAMMPS's misses:
                # "the power consumption [has] some bursts … missed
                # with a 200 ms interval".
                duration = float(rng.uniform(0.04, 0.08)) * scale
                phases.append(
                    pfd(
                        f"lammps.burst[{tag}]",
                        duration,
                        oi=2.5,
                        fpc=7.0,
                        uncore_sensitivity=0.15,
                        power_boost=1.55,
                        socket=socket,
                    )
                )
        # Neighbour-list rebuild every few MD steps: memory-class,
        # long enough for the detector to see the regime switch.
        phases.append(
            pfd(f"lammps.neigh[{block}]", 0.25 * scale, oi=0.30, fpc=2.0, socket=socket)
        )
    return Application(
        name="LAMMPS",
        phases=tuple(phases),
        structure=(
            "4 blocks of 10 MD force iterations (with seeded sub-200 ms "
            "bursts) separated by neighbour-list rebuilds"
        ),
    )
