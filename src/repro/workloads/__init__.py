"""Synthetic phase-level models of the paper's ten applications.

The paper evaluates DUFP on eight NAS Parallel Benchmarks (BT, CG, EP,
FT, LU, MG, SP, UA), HPL and LAMMPS.  DUFP never inspects application
code — it only sees per-interval FLOPS/s, memory bandwidth and power —
so each application is modelled as the sequence of execution phases
that produces the paper's counter signatures: per-phase FLOP/byte
volumes, achievable FLOPs-per-cycle, and sensitivity of the phase to
the uncore clock.  Section IV-B's observed behaviours (CG's long
memory-only setup, UA's 1-compute / N-memory alternation, LAMMPS's
sub-interval power bursts, …) are encoded structurally.
"""

from .phase import Phase, phase_from_duration, NominalRates
from .application import Application
from .npb import bt, cg, ep, ft, lu, mg, sp, ua
from .hpl import hpl
from .lammps import lammps
from .generator import random_application
from .traces import TraceSample, application_from_trace, measurements_from_run
from .catalog import APPLICATIONS, build_application, application_names
from .suites import SUITES, suite, suite_names

__all__ = [
    "Phase",
    "phase_from_duration",
    "NominalRates",
    "Application",
    "bt",
    "cg",
    "ep",
    "ft",
    "lu",
    "mg",
    "sp",
    "ua",
    "hpl",
    "lammps",
    "random_application",
    "TraceSample",
    "application_from_trace",
    "measurements_from_run",
    "APPLICATIONS",
    "build_application",
    "application_names",
    "SUITES",
    "suite",
    "suite_names",
]
