"""Counter-trace recording and replay.

Two directions:

* **record** — :func:`measurements_from_run` extracts the per-interval
  counter trace (FLOPS/s, bytes/s) a controller observed from a run
  result, at the controller's cadence;
* **replay** — :func:`application_from_trace` turns such a trace (or
  one captured with real PAPI on real hardware) back into a synthetic
  :class:`~repro.workloads.application.Application` whose phases
  reproduce the observed rates, so a workload measured once can be
  re-run under any controller configuration.

Replay inverts the roofline per sample: given observed FLOPS/s ``F``
and bandwidth ``B`` over an interval of length ``dt`` at (assumed)
default clocks, the phase carries volumes ``F·dt`` / ``B·dt`` and an
``fpc`` chosen so the model reproduces the observed rate.  Consecutive
samples with near-identical rates are merged into one phase to keep
the application compact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SocketConfig, yeti_socket_config
from ..errors import WorkloadError
from .application import Application
from .phase import Phase, NominalRates

__all__ = ["TraceSample", "measurements_from_run", "application_from_trace"]


@dataclass(frozen=True)
class TraceSample:
    """One interval of an observed counter trace."""

    dt_s: float
    flops_per_s: float
    bytes_per_s: float

    def __post_init__(self) -> None:
        if self.dt_s <= 0:
            raise WorkloadError("trace sample with non-positive duration")
        if self.flops_per_s < 0 or self.bytes_per_s < 0:
            raise WorkloadError("trace sample with negative rates")


def measurements_from_run(
    run_result, socket_id: int = 0, interval_s: float = 0.2
) -> list[TraceSample]:
    """Resample a run's engine trace onto controller-interval samples."""
    sock = run_result.socket(socket_id)
    if not sock.trace:
        raise WorkloadError("run recorded no trace")
    samples: list[TraceSample] = []
    acc_f = acc_b = acc_t = 0.0
    prev_t = 0.0
    for s in sock.trace:
        dt = s.time_s - prev_t
        prev_t = s.time_s
        acc_f += s.flops_rate * dt
        acc_b += s.bytes_rate * dt
        acc_t += dt
        if acc_t >= interval_s - 1e-9:
            samples.append(
                TraceSample(
                    dt_s=acc_t,
                    flops_per_s=acc_f / acc_t,
                    bytes_per_s=acc_b / acc_t,
                )
            )
            acc_f = acc_b = acc_t = 0.0
    if acc_t > 1e-6 and (acc_f > 0 or acc_b > 0):
        samples.append(
            TraceSample(dt_s=acc_t, flops_per_s=acc_f / acc_t, bytes_per_s=acc_b / acc_t)
        )
    return samples


def _rates_close(a: TraceSample, b: TraceSample, tolerance: float) -> bool:
    def close(x: float, y: float) -> bool:
        hi = max(abs(x), abs(y))
        return hi == 0.0 or abs(x - y) / hi <= tolerance

    return close(a.flops_per_s, b.flops_per_s) and close(
        a.bytes_per_s, b.bytes_per_s
    )


def application_from_trace(
    samples: list[TraceSample],
    *,
    name: str = "replay",
    merge_tolerance: float = 0.05,
    socket: SocketConfig | None = None,
) -> Application:
    """Build a replayable application from a counter trace.

    Each merged run of similar samples becomes one phase.  The phase's
    ``fpc`` is solved so that the roofline model at default clocks
    reproduces the observed FLOPS/s: if the observed rates are below
    the bandwidth roof the phase is compute-paced and
    ``fpc = F / (n_cores · f_max)``; bandwidth-saturated samples get a
    memory-paced phase instead.
    """
    if not samples:
        raise WorkloadError("empty trace")
    socket = socket or yeti_socket_config()
    rates = NominalRates(socket)
    peak_bw = socket.memory.peak_bw_bytes
    n_cores = socket.core.count
    f_max = socket.core.max_freq_hz

    # Merge consecutive similar samples.
    merged: list[TraceSample] = []
    for s in samples:
        if merged and _rates_close(merged[-1], s, merge_tolerance):
            prev = merged[-1]
            total = prev.dt_s + s.dt_s
            merged[-1] = TraceSample(
                dt_s=total,
                flops_per_s=(prev.flops_per_s * prev.dt_s + s.flops_per_s * s.dt_s)
                / total,
                bytes_per_s=(prev.bytes_per_s * prev.dt_s + s.bytes_per_s * s.dt_s)
                / total,
            )
        else:
            merged.append(s)

    phases: list[Phase] = []
    for i, s in enumerate(merged):
        flops = s.flops_per_s * s.dt_s
        bytes_ = s.bytes_per_s * s.dt_s
        if flops <= 0 and bytes_ <= 0:
            continue
        if s.bytes_per_s >= 0.92 * peak_bw:
            # Bandwidth-saturated: memory-paced; give the compute side
            # ample slack so the memory roof defines the duration.
            fpc = max(4.0 * s.flops_per_s / (n_cores * f_max), 1e-3)
        else:
            # Compute-paced: fpc reproduces the rate exactly.
            fpc = max(s.flops_per_s / (n_cores * f_max), 1e-3)
        phases.append(
            Phase(
                name=f"{name}.seg{i}",
                flops=flops,
                bytes=bytes_,
                fpc=fpc,
            )
        )
    if not phases:
        raise WorkloadError("trace contains no work")
    app = Application(name=name.upper(), phases=tuple(phases), structure=f"replay of {len(merged)} trace segments")
    # Sanity: the replay should take about as long as the trace did.
    replay_s = sum(rates.duration(p) for p in app.phases)
    trace_s = sum(s.dt_s for s in samples)
    if not 0.5 * trace_s <= replay_s <= 2.0 * trace_s:
        raise WorkloadError(
            f"replay duration {replay_s:.2f}s diverges from trace {trace_s:.2f}s; "
            "was the trace captured at non-default clocks?"
        )
    return app
