"""Execution phases: the unit of workload the simulator advances.

A :class:`Phase` carries absolute work volumes (FLOPs and DRAM bytes)
plus the microarchitectural character that determines how those volumes
turn into time on the simulated socket.  Phases are usually built from
a *nominal duration* — how long the phase takes in the machine's
default configuration — via :func:`phase_from_duration`, which inverts
the roofline model, so workload definitions read like the paper's
descriptions ("the first phase lasts ≈ 5 % of the run").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SocketConfig, yeti_socket_config
from ..errors import WorkloadError
from ..hardware.memory import MemorySystem
from ..hardware.perf import PhaseExecutionModel
from ..hardware.processor import PhaseWork

__all__ = ["Phase", "NominalRates", "phase_from_duration"]


@dataclass(frozen=True)
class Phase:
    """One homogeneous stretch of execution on a socket."""

    name: str
    #: Total double-precision FLOPs of the phase (per socket).
    flops: float
    #: Total DRAM bytes moved by the phase (per socket).
    bytes: float
    #: Achievable FLOPs per cycle per core if memory were infinite.
    fpc: float
    #: Memory-latency sensitivity (pointer chasing): inflates memory
    #: time when the uncore slows.
    latency_sensitivity: float = 0.0
    #: LLC-feed sensitivity: inflates compute time when the uncore slows.
    uncore_sensitivity: float = 0.0
    #: Extra DRAM traffic drawn when the uncore runs below saturation.
    overfetch: float = 0.0
    #: Core power multiplier (> 1 for high-current vector bursts).
    power_boost: float = 1.0
    #: Fraction of wall time the cores spend with no work queued (I/O,
    #: barrier or load-imbalance slack).  Only consulted by the C-state
    #: model; with C-states disabled idle cores still burn C0 power, as
    #: on the paper's performance-governor testbed.
    idleness: float = 0.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes < 0:
            raise WorkloadError(f"phase {self.name!r}: negative work volume")
        if self.flops == 0 and self.bytes == 0:
            raise WorkloadError(f"phase {self.name!r}: no work at all")
        if self.fpc <= 0:
            raise WorkloadError(f"phase {self.name!r}: non-positive fpc")
        for attr in ("latency_sensitivity", "uncore_sensitivity", "overfetch"):
            if getattr(self, attr) < 0:
                raise WorkloadError(f"phase {self.name!r}: negative {attr}")
        if self.power_boost <= 0:
            raise WorkloadError(f"phase {self.name!r}: non-positive power_boost")
        if not 0.0 <= self.idleness < 1.0:
            raise WorkloadError(f"phase {self.name!r}: idleness must be in [0, 1)")

    @property
    def operational_intensity(self) -> float:
        """FLOPs per byte; ``inf`` for a phase with no memory traffic."""
        if self.bytes == 0:
            return float("inf")
        return self.flops / self.bytes

    def to_work(self) -> PhaseWork:
        """The processor-facing view of this phase."""
        return PhaseWork(
            flops=self.flops,
            bytes=self.bytes,
            fpc=self.fpc,
            latency_sensitivity=self.latency_sensitivity,
            uncore_sensitivity=self.uncore_sensitivity,
            overfetch=self.overfetch,
            power_boost=self.power_boost,
            idleness=self.idleness,
        )

    def scaled(self, factor: float) -> "Phase":
        """A copy with both work volumes multiplied by ``factor``."""
        if factor <= 0:
            raise WorkloadError("scale factor must be positive")
        return Phase(
            name=self.name,
            flops=self.flops * factor,
            bytes=self.bytes * factor,
            fpc=self.fpc,
            latency_sensitivity=self.latency_sensitivity,
            uncore_sensitivity=self.uncore_sensitivity,
            overfetch=self.overfetch,
            power_boost=self.power_boost,
            idleness=self.idleness,
        )


@dataclass
class NominalRates:
    """Roofline evaluator at the machine's default clocks."""

    socket: SocketConfig

    def __post_init__(self) -> None:
        self.socket.validate()
        self._memory = MemorySystem(
            self.socket.memory, self.socket.core, self.socket.uncore
        )
        self._model = PhaseExecutionModel(self.socket.core, self._memory)

    def duration(self, phase: Phase) -> float:
        """Nominal wall time of ``phase`` at default (max) clocks."""
        return self._model.phase_time(
            phase.flops,
            phase.bytes,
            phase.fpc,
            self.socket.core.max_freq_hz,
            self.socket.uncore.max_freq_hz,
            phase.latency_sensitivity,
            phase.uncore_sensitivity,
        )

    def volumes_for(
        self,
        duration_s: float,
        oi: float,
        fpc: float,
        latency_sensitivity: float = 0.0,
        uncore_sensitivity: float = 0.0,
    ) -> tuple[float, float]:
        """Invert the roofline: volumes so the phase lasts ``duration_s``.

        Phase time is linear in the volume pair ``(oi·B, B)``, so one
        evaluation at B = 1 byte fixes the scale.
        """
        if duration_s <= 0:
            raise WorkloadError("duration must be positive")
        if oi < 0:
            raise WorkloadError("operational intensity must be non-negative")
        unit_bytes = 1.0
        t_unit = self._model.phase_time(
            oi * unit_bytes,
            unit_bytes,
            fpc,
            self.socket.core.max_freq_hz,
            self.socket.uncore.max_freq_hz,
            latency_sensitivity,
            uncore_sensitivity,
        )
        bytes_ = duration_s / t_unit
        return oi * bytes_, bytes_


def phase_from_duration(
    name: str,
    duration_s: float,
    oi: float,
    fpc: float,
    *,
    latency_sensitivity: float = 0.0,
    uncore_sensitivity: float = 0.0,
    overfetch: float = 0.0,
    power_boost: float = 1.0,
    socket: SocketConfig | None = None,
) -> Phase:
    """Build a phase that lasts ``duration_s`` in the default configuration.

    ``oi = 0`` yields a pure memory phase (no FLOPs); ``oi = inf`` is not
    supported — pass a large OI and a tiny byte count instead via the
    :class:`Phase` constructor directly.
    """
    rates = NominalRates(socket or yeti_socket_config())
    flops, bytes_ = rates.volumes_for(
        duration_s, oi, fpc, latency_sensitivity, uncore_sensitivity
    )
    return Phase(
        name=name,
        flops=flops,
        bytes=bytes_,
        fpc=fpc,
        latency_sensitivity=latency_sensitivity,
        uncore_sensitivity=uncore_sensitivity,
        overfetch=overfetch,
        power_boost=power_boost,
    )
