"""Applications: ordered phase sequences with iteration structure."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SocketConfig, yeti_socket_config
from ..errors import WorkloadError
from .phase import NominalRates, Phase

__all__ = ["Application"]


@dataclass(frozen=True)
class Application:
    """A complete run of one benchmark on one socket.

    The same phase list executes on every socket of the machine (the
    paper spreads OpenMP threads round-robin over all four sockets, so
    sockets see statistically identical work).
    """

    name: str
    phases: tuple[Phase, ...]
    #: Free-form description of the iteration structure, for reports.
    structure: str = ""

    def __post_init__(self) -> None:
        if not self.phases:
            raise WorkloadError(f"application {self.name!r} has no phases")

    @staticmethod
    def from_pattern(
        name: str,
        *,
        setup: list[Phase] | None = None,
        loop: list[Phase] | None = None,
        iterations: int = 1,
        teardown: list[Phase] | None = None,
        structure: str = "",
    ) -> "Application":
        """Compose setup + ``iterations`` × loop + teardown."""
        if iterations < 0:
            raise WorkloadError("iterations must be non-negative")
        phases: list[Phase] = list(setup or [])
        for i in range(iterations):
            for p in loop or []:
                phases.append(
                    Phase(
                        name=f"{p.name}[{i}]",
                        flops=p.flops,
                        bytes=p.bytes,
                        fpc=p.fpc,
                        latency_sensitivity=p.latency_sensitivity,
                        uncore_sensitivity=p.uncore_sensitivity,
                        overfetch=p.overfetch,
                    )
                )
        phases.extend(teardown or [])
        return Application(name=name, phases=tuple(phases), structure=structure)

    @property
    def total_flops(self) -> float:
        return sum(p.flops for p in self.phases)

    @property
    def total_bytes(self) -> float:
        return sum(p.bytes for p in self.phases)

    def nominal_duration(self, socket: SocketConfig | None = None) -> float:
        """Run time in the default configuration, seconds."""
        rates = NominalRates(socket or yeti_socket_config())
        return sum(rates.duration(p) for p in self.phases)

    def jittered(self, rng, sigma: float) -> "Application":
        """Per-run copy with phase volumes jittered multiplicatively.

        Models run-to-run variation (OS noise, allocation differences);
        ``rng`` is a seeded ``numpy.random.Generator``.
        """
        if sigma < 0:
            raise WorkloadError("jitter sigma must be non-negative")
        if sigma == 0.0:
            return self
        phases = tuple(
            p.scaled(max(1.0 + sigma * rng.standard_normal(), 0.2))
            for p in self.phases
        )
        return Application(name=self.name, phases=phases, structure=self.structure)
