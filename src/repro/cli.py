"""Command-line interface: regenerate any table/figure or run one app.

Examples::

    python -m repro table1
    python -m repro fig3b --runs 3
    python -m repro sweep --workers 8 --cache .repro-cache
    python -m repro sweep --controller dnpc --controller budget:watts=95
    python -m repro run CG --controller dufp --slowdown 10
    python -m repro policies
    python -m repro list

Controllers are selected from the policy registry by id, optionally
with parameters: ``--controller budget:watts=95,period_ticks=3``.
``repro policies`` lists every registered policy with its parameters.

``run`` and ``sweep`` also take platform flags (see docs/PLATFORM.md):
``--dies N`` splits the uncore into N independently-clocked dies,
``--epp N``/``--epb N`` set the HWP energy-performance hints, and
``--cstates`` enables the per-core C-state residency model::

    python -m repro run CG --controller governor-powersave --epp 192
    python -m repro sweep --apps CG --controller governor-ondemand --dies 2

Any sweep-backed experiment accepts ``--workers N`` (batch-sharded
fan-out over grid cells; results are identical at any worker count),
``--shard-size N`` (max cells per worker shard) and ``--cache DIR``
(content-addressed result cache: warm reruns and interrupted sweeps
skip already-computed cells; completed shards write through as the
sweep runs).
"""

from __future__ import annotations

import argparse
import sys

from .config import ControllerConfig
from .core.registry import as_spec, describe_policies, make_spec, parse_policy
from .errors import ReproError
from .experiments.registry import experiment_ids, run_experiment
from .sim.export import write_summary_json, write_trace_csv, write_trace_jsonl
from .sim.faults import parse_fault_plan
from .sim.run import run_application
from .workloads.catalog import application_names, build_application

__all__ = ["main", "build_parser"]


def _add_platform_args(p: argparse.ArgumentParser) -> None:
    """Platform-model flags shared by ``run`` and ``sweep``."""
    p.add_argument(
        "--dies",
        type=int,
        default=1,
        metavar="N",
        help=(
            "split the uncore into N independently-clocked dies "
            "(default 1: the legacy single-domain model)"
        ),
    )
    p.add_argument(
        "--epp",
        type=int,
        default=None,
        metavar="HINT",
        help=(
            "HWP energy-performance preference, 0 (performance) to "
            "255 (power); enables the EPB/EPP model"
        ),
    )
    p.add_argument(
        "--epb",
        type=int,
        default=None,
        metavar="HINT",
        help=(
            "IA32_ENERGY_PERF_BIAS, 0 (performance) to 15 (power); "
            "enables the EPB/EPP model"
        ),
    )
    p.add_argument(
        "--cstates",
        action="store_true",
        help="enable the per-core C-state residency model",
    )


def _platform_socket(args: argparse.Namespace):
    """SocketConfig override built from the platform flags, or ``None``.

    ``None`` — all flags at their defaults — keeps every downstream
    digest and trace byte-identical to a CLI that never had the flags.
    """
    dies = getattr(args, "dies", 1)
    epp = getattr(args, "epp", None)
    epb = getattr(args, "epb", None)
    cstates = getattr(args, "cstates", False)
    if dies == 1 and epp is None and epb is None and not cstates:
        return None
    from dataclasses import replace

    from .config import CStateConfig, EPBConfig, SocketConfig

    sock = SocketConfig()
    if dies != 1:
        sock = replace(sock, uncore=replace(sock.uncore, die_count=dies))
    if epp is not None or epb is not None:
        kwargs = {}
        if epp is not None:
            kwargs["epp"] = epp
        if epb is not None:
            kwargs["epb"] = epb
        sock = replace(sock, epb=EPBConfig(**kwargs))
    if cstates:
        sock = replace(sock, cstates=CStateConfig())
    sock.validate()
    return sock


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (one subcommand per experiment)."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Combining Uncore Frequency and Dynamic "
            "Power Capping to Improve Power Savings' (IPDPSW 2022)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    for exp_id in experiment_ids():
        p = sub.add_parser(exp_id, help=f"regenerate experiment {exp_id}")
        p.add_argument(
            "--runs",
            type=int,
            default=10,
            help="runs per configuration (paper protocol: 10)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="processes to fan protocol runs over (default: serial)",
        )
        p.add_argument(
            "--cache",
            metavar="DIR",
            default=None,
            help="content-addressed result cache directory",
        )
        p.add_argument(
            "--shard-size",
            type=int,
            default=None,
            metavar="N",
            help=(
                "max grid cells per worker shard (default: auto, ~3 "
                "shards per worker); smaller shards steal better, "
                "larger ones batch better"
            ),
        )
        if exp_id == "sweep":
            p.add_argument(
                "--apps",
                nargs="*",
                default=None,
                metavar="APP",
                help="restrict the grid to these applications",
            )
            p.add_argument(
                "--tolerances",
                nargs="*",
                type=float,
                default=None,
                metavar="PCT",
                help="tolerated-slowdown grid, percent (paper: 0 5 10 20)",
            )
            p.add_argument(
                "--scale",
                type=float,
                default=1.0,
                help="application problem-size scale (CI smoke: 0.3)",
            )
            p.add_argument(
                "--per-cell",
                action="store_true",
                help="print the per-cell timing/cache table",
            )
            p.add_argument(
                "--controller",
                action="append",
                default=None,
                metavar="POLICY",
                help=(
                    "registered policy to sweep, 'name' or "
                    "'name:key=val,...' (repeatable; default: duf dufp)"
                ),
            )
            p.add_argument(
                "--faults",
                metavar="SPEC",
                default=None,
                help=(
                    "fault plan applied to every grid cell, e.g. "
                    "'msr_fail=0.01,cap_latch_fail=0.05' "
                    "(see docs/FAULTS.md)"
                ),
            )
            p.add_argument(
                "--engine",
                choices=("scalar", "batch"),
                default="scalar",
                help=(
                    "simulation engine: 'batch' advances all cells in "
                    "vectorized lockstep — identical results, shared "
                    "cache entries (see docs/BATCHING.md)"
                ),
            )
            p.add_argument(
                "--gpus",
                type=int,
                default=0,
                metavar="N",
                help=(
                    "run every grid cell as a CPU+GPU co-simulation "
                    "with N GPUs under hetero budget-split controllers "
                    "(default controllers: hetero-coord hetero-fair; "
                    "see docs/HETERO.md)"
                ),
            )
            p.add_argument(
                "--kernels",
                type=int,
                default=8,
                metavar="N",
                help="GPU kernel-queue length for --gpus sweeps (default 8)",
            )
            p.add_argument(
                "--nodes",
                type=int,
                default=0,
                metavar="N",
                help=(
                    "run every grid cell as an N-node cluster under "
                    "fleet partitioning controllers (default "
                    "controllers: fleet-demand fleet-fair; see "
                    "docs/CLUSTER.md)"
                ),
            )
            _add_platform_args(p)

    p_list = sub.add_parser("list", help="list applications and experiments")

    p_policies = sub.add_parser(
        "policies", help="list registered control policies and their parameters"
    )

    p_export = sub.add_parser(
        "export", help="regenerate every table/figure into a directory"
    )
    p_export.add_argument("--out", default="results", help="output directory")
    p_export.add_argument("--runs", type=int, default=10)
    p_export.add_argument("--workers", type=int, default=1)
    p_export.add_argument("--cache", metavar="DIR", default=None)
    p_export.add_argument("--shard-size", type=int, default=None, metavar="N")

    p_hetero = sub.add_parser(
        "hetero", help="CPU+GPU shared-budget demo (paper §VII future work)"
    )
    p_hetero.add_argument("--budget", type=float, default=300.0)
    p_hetero.add_argument("--slowdown", type=float, default=10.0)
    p_hetero.add_argument(
        "--app",
        default="CG",
        help=f"application on the CPU socket (one of: "
        f"{', '.join(application_names())}; default CG)",
    )
    p_hetero.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="application problem-size scale (default 0.5)",
    )
    p_hetero.add_argument(
        "--kernels",
        type=int,
        default=8,
        metavar="N",
        help="GPU kernel-queue length (default 8)",
    )
    p_hetero.add_argument(
        "--gpus",
        type=int,
        default=1,
        metavar="N",
        help="GPUs sharing the budget (default 1)",
    )
    p_hetero.add_argument(
        "--seed", type=int, default=0, help="run seed (jitter + faults)"
    )
    p_hetero.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="POLICY",
        help=(
            "hetero budget-split policy, 'name' or 'name:key=val,...' "
            "(repeatable; default: compare hetero-static vs hetero-coord "
            "at --budget)"
        ),
    )

    p_cluster = sub.add_parser(
        "cluster",
        help="multi-node fleet power-capping demo (one global budget)",
    )
    p_cluster.add_argument(
        "--nodes", type=int, default=2, metavar="N", help="node count (default 2)"
    )
    p_cluster.add_argument(
        "--budget",
        type=float,
        default=200.0,
        help="global fleet power budget, watts (default 200)",
    )
    p_cluster.add_argument(
        "--apps",
        nargs="*",
        default=None,
        metavar="APP",
        help=(
            "applications cycled over the nodes (default: WEB BATCH — "
            "co-located latency-sensitive + batch traffic)"
        ),
    )
    p_cluster.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="application problem-size scale (default 0.5)",
    )
    p_cluster.add_argument(
        "--slowdown",
        type=float,
        default=10.0,
        help="node-controller tolerated slowdown, percent (default 10)",
    )
    p_cluster.add_argument(
        "--node-controller",
        default="dufp",
        metavar="POLICY",
        help="per-socket controller stack each node runs (default dufp)",
    )
    p_cluster.add_argument(
        "--period",
        type=float,
        default=1.0,
        metavar="S",
        help="fleet re-allocation period, simulated seconds (default 1)",
    )
    p_cluster.add_argument(
        "--sockets",
        type=int,
        default=1,
        metavar="N",
        help="sockets per node (default 1)",
    )
    p_cluster.add_argument(
        "--seed", type=int, default=0, help="run seed (jitter + faults)"
    )
    p_cluster.add_argument(
        "--policy",
        action="append",
        default=None,
        metavar="POLICY",
        help=(
            "fleet partitioning policy, 'name' or 'name:key=val,...' "
            "(repeatable; default: compare fleet-static vs fleet-demand "
            "at --budget)"
        ),
    )

    p_run = sub.add_parser("run", help="run one application once")
    p_run.add_argument("app", help=f"one of: {', '.join(application_names())}")
    p_run.add_argument(
        "--controller",
        default="dufp",
        metavar="POLICY",
        help=(
            "registered policy, 'name' or 'name:key=val,...' "
            "(see 'repro policies'; default: dufp)"
        ),
    )
    p_run.add_argument(
        "--slowdown",
        type=float,
        default=5.0,
        help="tolerated slowdown, percent (default 5)",
    )
    p_run.add_argument(
        "--cap",
        type=float,
        default=None,
        help="shorthand for --controller static:cap_w=CAP",
    )
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "seeded fault plan, e.g. 'msr_fail=0.01,cap_latch_fail=0.05' "
            "(see docs/FAULTS.md)"
        ),
    )
    p_run.add_argument(
        "--trace-csv",
        metavar="PATH",
        help="write the socket-0 trace (10 ms samples) to a CSV file",
    )
    p_run.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        help="write the socket-0 trace to a JSONL file",
    )
    p_run.add_argument(
        "--summary-json",
        metavar="PATH",
        help="write the run summary (times, energies, phases) to JSON",
    )
    _add_platform_args(p_run)
    _ = p_list
    _ = p_policies
    return parser


def _run_single(args: argparse.Namespace) -> str:
    cfg = ControllerConfig(tolerated_slowdown=args.slowdown / 100.0)
    spec = parse_policy(args.controller)
    if args.cap is not None:
        if spec.name != "static" or args.controller != "static":
            raise ReproError(
                "--cap is shorthand for --controller static:cap_w=CAP; "
                "pass parameters inline with any other policy"
            )
        spec = make_spec("static", cap_w=args.cap)
    socket = _platform_socket(args)
    app = build_application(args.app, socket=socket)
    faults = parse_fault_plan(args.faults) if args.faults else None
    machine = None
    if socket is not None:
        from .hardware.topology import MachineConfig
        from .sim.machine import SimulatedMachine

        machine = SimulatedMachine(MachineConfig(socket=socket, socket_count=1))
    result = run_application(
        app,
        spec.build(cfg),
        controller_cfg=cfg,
        machine=machine,
        seed=args.seed,
        faults=faults,
    )
    if args.trace_csv:
        rows = write_trace_csv(result, args.trace_csv)
        print(f"wrote {rows} trace rows to {args.trace_csv}")
    if args.trace_jsonl:
        lines_out = write_trace_jsonl(result, args.trace_jsonl)
        print(f"wrote {lines_out} trace lines to {args.trace_jsonl}")
    if args.summary_json:
        write_summary_json(result, args.summary_json)
        print(f"wrote summary to {args.summary_json}")
    sock = result.socket(0)
    lines = [
        f"application        : {result.app_name}",
        f"controller         : {result.controller_name}",
        f"execution time     : {result.execution_time_s:.2f} s",
        f"avg package power  : {result.avg_package_power_w:.1f} W",
        f"avg DRAM power     : {result.avg_dram_power_w:.1f} W",
        f"CPU+DRAM energy    : {result.total_energy_j / 1e3:.2f} kJ",
        f"avg core frequency : {sock.average_core_freq_hz() / 1e9:.2f} GHz",
    ]
    if faults is not None:
        lines.append(f"fault events       : {len(result.fault_events)}")
    return "\n".join(lines)


def _run_sweep(args: argparse.Namespace) -> str:
    from .experiments.sweep import SWEEP_TOLERANCES_PCT, run_sweep

    gpu = None
    cluster = None
    if args.gpus > 0 and args.nodes > 0:
        raise ReproError("--gpus and --nodes are mutually exclusive")
    if args.gpus > 0:
        from .hardware.gpu import GPUNodeConfig

        gpu = GPUNodeConfig(gpu_count=args.gpus, kernel_count=args.kernels)
        default_controllers = ("hetero-coord", "hetero-fair")
    elif args.nodes > 0:
        from .cluster.spec import ClusterSpec

        cluster = ClusterSpec(node_count=args.nodes)
        default_controllers = ("fleet-demand", "fleet-fair")
    else:
        default_controllers = ("duf", "dufp")
    controllers = (
        tuple(args.controller) if args.controller else default_controllers
    )
    sweep = run_sweep(
        apps=args.apps,
        tolerances_pct=args.tolerances or SWEEP_TOLERANCES_PCT,
        runs=args.runs,
        controllers=controllers,
        app_scale=args.scale,
        faults=parse_fault_plan(args.faults) if args.faults else None,
        engine=args.engine,
        gpu=gpu,
        cluster=cluster,
        socket=_platform_socket(args),
        workers=args.workers,
        cache=args.cache,
        shard_size=args.shard_size,
    )
    lines = [sweep.render()]
    for label in (as_spec(c).label for c in controllers):
        within, total = sweep.respected_count(label)
        lines.append(
            f"{label} tolerance respected in {within}/{total} configurations"
        )
    lines.append(sweep.execution.render(per_cell=args.per_cell))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        if args.command == "list":
            print("applications:", ", ".join(application_names()))
            print("experiments :", ", ".join(experiment_ids()))
        elif args.command == "policies":
            print(describe_policies())
        elif args.command == "run":
            print(_run_single(args))
        elif args.command == "export":
            from .experiments.export_all import export_all

            manifest = export_all(
                args.out,
                runs=args.runs,
                workers=args.workers,
                cache=args.cache,
                shard_size=args.shard_size,
            )
            print(f"wrote {len(manifest.files)} files to {manifest.out_dir}/")
        elif args.command == "hetero":
            print(_run_hetero(args))
        elif args.command == "cluster":
            print(_run_cluster(args))
        elif args.command == "sweep":
            print(_run_sweep(args))
        else:
            print(
                run_experiment(
                    args.command,
                    runs=args.runs,
                    workers=args.workers,
                    cache=args.cache,
                    shard_size=args.shard_size,
                )
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _run_hetero(args: argparse.Namespace) -> str:
    from .core.registry import split_policy
    from .hardware.gpu import GPUNodeConfig
    from .sim.hetero import HeteroEngine

    cfg = ControllerConfig(tolerated_slowdown=args.slowdown / 100.0)
    app = build_application(args.app, scale=args.scale)
    node = GPUNodeConfig(gpu_count=args.gpus, kernel_count=args.kernels)
    node.validate()
    if args.policy:
        policies = [parse_policy(p) for p in args.policy]
        display = {p.label: p.label for p in policies}
    else:
        # The classic demo: the naive operator split vs the paper's
        # coordinated one, both at --budget.
        policies = [
            make_spec("hetero-static", budget_w=args.budget),
            make_spec("hetero-coord", budget_w=args.budget),
        ]
        display = {
            policies[0].label: "static 50/50",
            policies[1].label: "coordinated",
        }
    lines = [
        f"shared budget {args.budget:.0f} W, tolerance "
        f"{args.slowdown:.0f} %, {args.gpus} GPU(s), "
        f"{args.kernels} kernels, app {app.name} x{args.scale:g}"
    ]
    summaries = []
    for spec in policies:
        split = split_policy(spec, cfg)
        result = HeteroEngine(
            application=app,
            node=node,
            policy=split,
            cfg=cfg,
            seed=args.seed,
        ).run()
        _, cpu_w, gpu_w = result.allocations[-1]
        label = display[spec.label]
        lines.append(
            f"  {label:20s} CPU {result.cpu_finish_s:6.2f} s  "
            f"GPU {result.gpu_finish_s:6.2f} s  split {cpu_w:.0f}/{gpu_w:.0f} W"
        )
        summaries.append(
            "HETERO "
            f"app={app.name} scale={args.scale:g} gpus={args.gpus} "
            f"kernels={args.kernels} seed={args.seed} "
            f"policy={spec.label} budget_w={split.budget_w:g} "
            f"makespan_s={result.makespan_s:.4f} "
            f"cpu_finish_s={result.cpu_finish_s:.4f} "
            f"gpu_finish_s={result.gpu_finish_s:.4f} "
            f"cpu_energy_j={result.cpu_energy_j:.1f} "
            f"gpu_energy_j={result.gpu_energy_j:.1f} "
            f"transfer_s={result.transfer_s:.4f}"
        )
    return "\n".join(lines + summaries)


def _run_cluster(args: argparse.Namespace) -> str:
    from .cluster import ClusterEngine, ClusterSpec
    from .core.registry import fleet_policy

    cfg = ControllerConfig(tolerated_slowdown=args.slowdown / 100.0)
    app_names = tuple(
        a.upper() for a in (args.apps if args.apps else ("WEB", "BATCH"))
    )
    cluster = ClusterSpec(
        node_count=args.nodes,
        node_apps=app_names,
        node_controller=args.node_controller,
        sockets_per_node=args.sockets,
        period_s=args.period,
    )
    cluster.validate()
    apps = [
        build_application(cluster.app_for(i, app_names[0]), scale=args.scale)
        for i in range(args.nodes)
    ]
    if args.policy:
        policies = [parse_policy(p) for p in args.policy]
        display = {p.label: p.label for p in policies}
    else:
        # The classic demo: the never-revisited equal split vs the
        # demand-driven water-filling partition, both at --budget.
        policies = [
            make_spec("fleet-static", budget_w=args.budget),
            make_spec("fleet-demand", budget_w=args.budget),
        ]
        display = {
            policies[0].label: "static equal share",
            policies[1].label: "demand-driven",
        }
    lines = [
        f"fleet budget {args.budget:.0f} W over {args.nodes} node(s) x "
        f"{args.sockets} socket(s), tolerance {args.slowdown:.0f} %, "
        f"period {args.period:g} s, apps {'+'.join(dict.fromkeys(app_names))} "
        f"x{args.scale:g}"
    ]
    summaries = []
    for spec in policies:
        fleet = fleet_policy(spec, cfg)
        result = ClusterEngine(
            applications=apps,
            cluster=cluster,
            policy=fleet,
            controller_cfg=cfg,
            seed=args.seed,
        ).run()
        _, alloc = result.allocations[-1]
        label = display[spec.label]
        makespans = " ".join(f"{m:6.2f}" for m in result.node_makespans_s)
        lines.append(
            f"  {label:20s} nodes [{makespans}] s  "
            f"jain {result.fairness_index:.3f}  "
            f"p99 slowdown {result.p99_slowdown:.3f}"
        )
        summaries.append(
            "CLUSTER "
            f"app={'+'.join(dict.fromkeys(a.name for a in apps))} "
            f"nodes={args.nodes} sockets={args.sockets} "
            f"scale={args.scale:g} seed={args.seed} "
            f"policy={spec.label} budget_w={fleet.budget_w:g} "
            f"makespan_s={result.makespan_s:.4f} "
            f"energy_j={result.total_energy_j:.1f} "
            f"jain={result.fairness_index:.4f} "
            f"p99_slowdown={result.p99_slowdown:.4f} "
            f"allocs={len(result.allocations)} "
            f"last_alloc_w={'/'.join(f'{a:.0f}' for a in alloc)}"
        )
    return "\n".join(lines + summaries)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
