"""Command-line interface: regenerate any table/figure or run one app.

Examples::

    python -m repro table1
    python -m repro fig3b --runs 3
    python -m repro sweep --workers 8 --cache .repro-cache
    python -m repro sweep --controller dnpc --controller budget:watts=95
    python -m repro run CG --controller dufp --slowdown 10
    python -m repro policies
    python -m repro list

Controllers are selected from the policy registry by id, optionally
with parameters: ``--controller budget:watts=95,period_ticks=3``.
``repro policies`` lists every registered policy with its parameters.

Any sweep-backed experiment accepts ``--workers N`` (batch-sharded
fan-out over grid cells; results are identical at any worker count),
``--shard-size N`` (max cells per worker shard) and ``--cache DIR``
(content-addressed result cache: warm reruns and interrupted sweeps
skip already-computed cells; completed shards write through as the
sweep runs).
"""

from __future__ import annotations

import argparse
import sys

from .config import ControllerConfig
from .core.registry import as_spec, describe_policies, make_spec, parse_policy
from .errors import ReproError
from .experiments.registry import experiment_ids, run_experiment
from .sim.export import write_summary_json, write_trace_csv, write_trace_jsonl
from .sim.faults import parse_fault_plan
from .sim.run import run_application
from .workloads.catalog import application_names, build_application

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The repro argument parser (one subcommand per experiment)."""
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Combining Uncore Frequency and Dynamic "
            "Power Capping to Improve Power Savings' (IPDPSW 2022)"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    for exp_id in experiment_ids():
        p = sub.add_parser(exp_id, help=f"regenerate experiment {exp_id}")
        p.add_argument(
            "--runs",
            type=int,
            default=10,
            help="runs per configuration (paper protocol: 10)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=1,
            help="processes to fan protocol runs over (default: serial)",
        )
        p.add_argument(
            "--cache",
            metavar="DIR",
            default=None,
            help="content-addressed result cache directory",
        )
        p.add_argument(
            "--shard-size",
            type=int,
            default=None,
            metavar="N",
            help=(
                "max grid cells per worker shard (default: auto, ~3 "
                "shards per worker); smaller shards steal better, "
                "larger ones batch better"
            ),
        )
        if exp_id == "sweep":
            p.add_argument(
                "--apps",
                nargs="*",
                default=None,
                metavar="APP",
                help="restrict the grid to these applications",
            )
            p.add_argument(
                "--tolerances",
                nargs="*",
                type=float,
                default=None,
                metavar="PCT",
                help="tolerated-slowdown grid, percent (paper: 0 5 10 20)",
            )
            p.add_argument(
                "--scale",
                type=float,
                default=1.0,
                help="application problem-size scale (CI smoke: 0.3)",
            )
            p.add_argument(
                "--per-cell",
                action="store_true",
                help="print the per-cell timing/cache table",
            )
            p.add_argument(
                "--controller",
                action="append",
                default=None,
                metavar="POLICY",
                help=(
                    "registered policy to sweep, 'name' or "
                    "'name:key=val,...' (repeatable; default: duf dufp)"
                ),
            )
            p.add_argument(
                "--faults",
                metavar="SPEC",
                default=None,
                help=(
                    "fault plan applied to every grid cell, e.g. "
                    "'msr_fail=0.01,cap_latch_fail=0.05' "
                    "(see docs/FAULTS.md)"
                ),
            )
            p.add_argument(
                "--engine",
                choices=("scalar", "batch"),
                default="scalar",
                help=(
                    "simulation engine: 'batch' advances all cells in "
                    "vectorized lockstep — identical results, shared "
                    "cache entries (see docs/BATCHING.md)"
                ),
            )

    p_list = sub.add_parser("list", help="list applications and experiments")

    p_policies = sub.add_parser(
        "policies", help="list registered control policies and their parameters"
    )

    p_export = sub.add_parser(
        "export", help="regenerate every table/figure into a directory"
    )
    p_export.add_argument("--out", default="results", help="output directory")
    p_export.add_argument("--runs", type=int, default=10)
    p_export.add_argument("--workers", type=int, default=1)
    p_export.add_argument("--cache", metavar="DIR", default=None)
    p_export.add_argument("--shard-size", type=int, default=None, metavar="N")

    p_hetero = sub.add_parser(
        "hetero", help="CPU+GPU shared-budget demo (paper §VII future work)"
    )
    p_hetero.add_argument("--budget", type=float, default=300.0)
    p_hetero.add_argument("--slowdown", type=float, default=10.0)

    p_run = sub.add_parser("run", help="run one application once")
    p_run.add_argument("app", help=f"one of: {', '.join(application_names())}")
    p_run.add_argument(
        "--controller",
        default="dufp",
        metavar="POLICY",
        help=(
            "registered policy, 'name' or 'name:key=val,...' "
            "(see 'repro policies'; default: dufp)"
        ),
    )
    p_run.add_argument(
        "--slowdown",
        type=float,
        default=5.0,
        help="tolerated slowdown, percent (default 5)",
    )
    p_run.add_argument(
        "--cap",
        type=float,
        default=None,
        help="shorthand for --controller static:cap_w=CAP",
    )
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help=(
            "seeded fault plan, e.g. 'msr_fail=0.01,cap_latch_fail=0.05' "
            "(see docs/FAULTS.md)"
        ),
    )
    p_run.add_argument(
        "--trace-csv",
        metavar="PATH",
        help="write the socket-0 trace (10 ms samples) to a CSV file",
    )
    p_run.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        help="write the socket-0 trace to a JSONL file",
    )
    p_run.add_argument(
        "--summary-json",
        metavar="PATH",
        help="write the run summary (times, energies, phases) to JSON",
    )
    _ = p_list
    _ = p_policies
    return parser


def _run_single(args: argparse.Namespace) -> str:
    cfg = ControllerConfig(tolerated_slowdown=args.slowdown / 100.0)
    spec = parse_policy(args.controller)
    if args.cap is not None:
        if spec.name != "static" or args.controller != "static":
            raise ReproError(
                "--cap is shorthand for --controller static:cap_w=CAP; "
                "pass parameters inline with any other policy"
            )
        spec = make_spec("static", cap_w=args.cap)
    app = build_application(args.app)
    faults = parse_fault_plan(args.faults) if args.faults else None
    result = run_application(
        app, spec.build(cfg), controller_cfg=cfg, seed=args.seed, faults=faults
    )
    if args.trace_csv:
        rows = write_trace_csv(result, args.trace_csv)
        print(f"wrote {rows} trace rows to {args.trace_csv}")
    if args.trace_jsonl:
        lines_out = write_trace_jsonl(result, args.trace_jsonl)
        print(f"wrote {lines_out} trace lines to {args.trace_jsonl}")
    if args.summary_json:
        write_summary_json(result, args.summary_json)
        print(f"wrote summary to {args.summary_json}")
    sock = result.socket(0)
    lines = [
        f"application        : {result.app_name}",
        f"controller         : {result.controller_name}",
        f"execution time     : {result.execution_time_s:.2f} s",
        f"avg package power  : {result.avg_package_power_w:.1f} W",
        f"avg DRAM power     : {result.avg_dram_power_w:.1f} W",
        f"CPU+DRAM energy    : {result.total_energy_j / 1e3:.2f} kJ",
        f"avg core frequency : {sock.average_core_freq_hz() / 1e9:.2f} GHz",
    ]
    if faults is not None:
        lines.append(f"fault events       : {len(result.fault_events)}")
    return "\n".join(lines)


def _run_sweep(args: argparse.Namespace) -> str:
    from .experiments.sweep import SWEEP_TOLERANCES_PCT, run_sweep

    controllers = tuple(args.controller) if args.controller else ("duf", "dufp")
    sweep = run_sweep(
        apps=args.apps,
        tolerances_pct=args.tolerances or SWEEP_TOLERANCES_PCT,
        runs=args.runs,
        controllers=controllers,
        app_scale=args.scale,
        faults=parse_fault_plan(args.faults) if args.faults else None,
        engine=args.engine,
        workers=args.workers,
        cache=args.cache,
        shard_size=args.shard_size,
    )
    lines = [sweep.render()]
    for label in (as_spec(c).label for c in controllers):
        within, total = sweep.respected_count(label)
        lines.append(
            f"{label} tolerance respected in {within}/{total} configurations"
        )
    lines.append(sweep.execution.render(per_cell=args.per_cell))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    try:
        if args.command == "list":
            print("applications:", ", ".join(application_names()))
            print("experiments :", ", ".join(experiment_ids()))
        elif args.command == "policies":
            print(describe_policies())
        elif args.command == "run":
            print(_run_single(args))
        elif args.command == "export":
            from .experiments.export_all import export_all

            manifest = export_all(
                args.out,
                runs=args.runs,
                workers=args.workers,
                cache=args.cache,
                shard_size=args.shard_size,
            )
            print(f"wrote {len(manifest.files)} files to {manifest.out_dir}/")
        elif args.command == "hetero":
            print(_run_hetero(args))
        elif args.command == "sweep":
            print(_run_sweep(args))
        else:
            print(
                run_experiment(
                    args.command,
                    runs=args.runs,
                    workers=args.workers,
                    cache=args.cache,
                    shard_size=args.shard_size,
                )
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _run_hetero(args: argparse.Namespace) -> str:
    from .hardware.gpu import GPUKernel
    from .sim.hetero import HeteroEngine

    cfg = ControllerConfig(tolerated_slowdown=args.slowdown / 100.0)
    app = build_application("CG", scale=0.5)
    kernels = [
        GPUKernel(f"dgemm[{i}]", flops=6e12, bytes=6e12 / 8.0) for i in range(8)
    ]
    lines = [f"shared budget {args.budget:.0f} W, tolerance {args.slowdown:.0f} %"]
    for coordinated in (False, True):
        result = HeteroEngine(
            application=app,
            kernels=kernels,
            total_budget_w=args.budget,
            cfg=cfg,
            coordinated=coordinated,
        ).run()
        _, cpu_w, gpu_w = result.allocations[-1]
        label = "coordinated" if coordinated else "static 50/50"
        lines.append(
            f"  {label:13s} CPU {result.cpu_finish_s:6.2f} s  "
            f"GPU {result.gpu_finish_s:6.2f} s  split {cpu_w:.0f}/{gpu_w:.0f} W"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
